"""Batched arrivals with stale load information.

In distributed deployments the greedy protocol rarely sees perfectly fresh
loads: requests arriving within the same scheduling round observe the loads
*as of the round start*.  This module implements that batched variant —
every ball in a batch of size ``b`` compares candidates using the counts
frozen at the batch boundary (ties, including the all-equal stale view,
are broken uniformly among max-capacity candidates) — so the library can
quantify how staleness degrades the lnln(n) guarantee.  ``b = 1`` recovers
the sequential protocol exactly; ``b = m`` degenerates to one-choice-like
behaviour (every decision uses the empty-system view).

This is an extension beyond the paper's model (flagged in DESIGN.md); the
batched two-choice literature predicts the max load grows smoothly with the
batch size, which the accompanying tests check qualitatively.
"""

from __future__ import annotations

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.distributions import probability_model
from ..sampling.rngutils import make_rng, spawn_seed_sequences
from .ensemble import EnsembleResult, resolve_ensemble_seeds
from .simulation import SimulationResult

__all__ = ["simulate_batched", "simulate_batched_ensemble"]


def simulate_batched(
    bins: BinArray,
    m: int | None = None,
    d: int = 2,
    *,
    batch_size: int = 1,
    probabilities="proportional",
    seed=None,
) -> SimulationResult:
    """Run the greedy d-choice game with per-batch stale loads.

    Parameters match :func:`repro.core.simulation.simulate` plus
    ``batch_size`` — the number of balls that share one frozen view of the
    loads.  Within a batch, each ball still commits (the counts advance),
    but *decisions* use the frozen counts.
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    if m is None:
        m = bins.total_capacity
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")

    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities)
    rng = make_rng(seed)

    caps = bins.capacities.tolist()
    counts = [0] * bins.n
    thrown = 0
    while thrown < m:
        k = min(batch_size, m - thrown)
        choices = sampler.sample((k, d), rng).tolist()
        tie_u = rng.random(k).tolist()
        frozen = counts.copy()
        for j in range(k):
            row = choices[j]
            best = [row[0]]
            best_num = frozen[row[0]] + 1
            best_den = caps[row[0]]
            for b in row[1:]:
                num = frozen[b] + 1
                den = caps[b]
                lhs = num * best_den
                rhs = best_num * den
                if lhs < rhs:
                    best = [b]
                    best_num = num
                    best_den = den
                elif lhs == rhs and b not in best:
                    best.append(b)
            if len(best) > 1:
                cmax = max(caps[b] for b in best)
                best = [b for b in best if caps[b] == cmax]
            chosen = best[0] if len(best) == 1 else best[int(tie_u[j] * len(best))]
            counts[chosen] += 1
        thrown += k

    return SimulationResult(
        bins=bins,
        counts=np.asarray(counts, dtype=np.int64),
        m=m,
        d=d,
        probability=model.name,
        tie_break="max_capacity",
    )


def _resolve_stale_batch(counts, caps, choices, tie_u):
    """Resolve one stale-view batch in lockstep; returns ``(R, k)`` winners.

    Every ball of the batch (all replications at once) compares its
    candidates against the *frozen* ``counts`` with the exact integer
    cross-multiplication and the scalar loop's tie pipeline — first-occurrence
    dedup, max-capacity filter, uniform pick via the position-aligned
    ``tie_u`` — so each replication reproduces
    :func:`simulate_batched`'s decisions bit for bit.  Because no decision in
    a batch depends on another, the batch collapses to one vectorised step
    over ``(R, k, d)`` with no per-ball Python loop at all.
    """
    R, k, d = choices.shape
    rows = np.arange(R)[:, None, None]
    num = counts[rows, choices] + 1
    den = caps[choices]
    best_num = num[..., 0].copy()
    best_den = den[..., 0].copy()
    for i in range(1, d):
        better = num[..., i] * best_den < best_num * den[..., i]
        np.copyto(best_num, num[..., i], where=better)
        np.copyto(best_den, den[..., i], where=better)
    # Tie set: candidates achieving the minimum, first occurrence per bin
    # only (identical bins share num/den, so position-blind dedup is exact).
    mask = num * best_den[..., None] == best_num[..., None] * den
    for i in range(1, d):
        dup = choices[..., i] == choices[..., 0]
        for i2 in range(1, i):
            dup |= choices[..., i] == choices[..., i2]
        mask[..., i] &= ~dup
    cmax = np.where(mask, den, -1).max(axis=-1)
    mask &= den == cmax[..., None]
    tied = mask.sum(axis=-1)
    sel = (tie_u * tied).astype(np.int64)
    hit = (mask.cumsum(axis=-1) == (sel + 1)[..., None]) & mask
    pos = hit.argmax(axis=-1)
    return np.take_along_axis(choices, pos[..., None], axis=-1)[..., 0]


def simulate_batched_ensemble(
    bins: BinArray,
    repetitions: int | None = None,
    m: int | None = None,
    d: int = 2,
    *,
    batch_size: int = 1,
    probabilities="proportional",
    seed=None,
    seeds=None,
    seed_mode: str = "spawn",
) -> EnsembleResult:
    """Run the stale-view batched game, ``R`` replications in lockstep.

    Parameters mirror :func:`simulate_batched` plus the ensemble seeding
    knobs of :func:`repro.core.ensemble.simulate_ensemble`: with
    ``seed_mode="spawn"`` (or explicit ``seeds=``) replication ``r``
    reproduces ``simulate_batched(bins, seed=child_r, ...)`` bit-exactly —
    same per-batch draw order, same frozen-view decisions;
    ``seed_mode="blocked"`` draws whole ``(R, k, d)`` batches from a single
    generator (faster, statistically identical, not stream-matched).

    Unlike the sequential protocol, decisions inside one batch are mutually
    independent given the frozen counts, so the kernel vectorises over balls
    *and* replications at once: large batch sizes get faster, not slower.
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    repetitions, seeds = resolve_ensemble_seeds(repetitions, seeds, seed_mode)
    if m is None:
        m = bins.total_capacity
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")

    R = repetitions
    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities)
    if seed_mode == "spawn":
        if seeds is None:
            seeds = spawn_seed_sequences(seed, R)
        gens = [make_rng(s) for s in seeds]
        block_rng = None
    else:
        gens = None
        block_rng = make_rng(seed)

    n = bins.n
    caps = bins.capacities
    counts = np.zeros((R, n), dtype=np.int64)
    offsets = (np.arange(R, dtype=np.int64) * n)[:, None]
    flat = counts.reshape(-1)
    thrown = 0
    while thrown < m:
        k = min(batch_size, m - thrown)
        if gens is not None:
            choices = np.empty((R, k, d), dtype=np.int64)
            tie_u = np.empty((R, k), dtype=np.float64)
            for r, g in enumerate(gens):
                choices[r] = sampler.sample((k, d), g)
                tie_u[r] = g.random(k)
        else:
            choices = sampler.sample((R, k, d), block_rng)
            tie_u = block_rng.random((R, k))
        chosen = _resolve_stale_batch(counts, caps, choices, tie_u)
        # Several balls of one batch may land in the same (replication, bin)
        # slot; add.at accumulates duplicates where += would drop them.
        np.add.at(flat, (chosen + offsets).reshape(-1), 1)
        thrown += k

    return EnsembleResult(
        bins=bins,
        counts=counts,
        m=m,
        d=d,
        repetitions=R,
        probability=model.name,
        tie_break="max_capacity",
        seed_mode=seed_mode,
    )
