"""Load vectors and slot load vectors (Section 2 machinery).

The analysis reasons about allocations through three views:

* the **load vector** ``L = (ℓ_1, .., ℓ_n)`` with ``ℓ_i = m_i / c_i``;
* the **normalised load vector** — ``L`` sorted in non-increasing order;
* the **slot load vector** ``S`` — every bin of capacity ``c`` is imagined as
  ``c`` unit slots, filled round-robin: when a bin holds ``ℓ`` balls, its
  first ``ℓ mod c`` slots hold ``⌈ℓ/c⌉`` balls and the rest ``⌊ℓ/c⌋``;
* the **normalised slot load vector** — slot values sorted in non-increasing
  order, with the paper's extra tie rule: among slots of equal value, slots
  belonging to the bin of *higher load* come first.

The running example from the paper (two bins of capacity 4 with loads 2.5
and 2.75) is preserved as a doctest on
:func:`normalized_slot_load_vector`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "loads_from_counts",
    "normalized_load_vector",
    "slot_load_vector",
    "normalized_slot_load_vector",
    "slot_owners_by_position",
]


def _validate(counts, capacities) -> tuple[np.ndarray, np.ndarray]:
    cnt = np.asarray(counts, dtype=np.int64)
    cap = np.asarray(capacities, dtype=np.int64)
    if cnt.shape != cap.shape or cnt.ndim != 1:
        raise ValueError(
            f"counts {cnt.shape} and capacities {cap.shape} must be equal-length 1-D vectors"
        )
    if np.any(cnt < 0):
        raise ValueError("counts must be non-negative")
    if np.any(cap <= 0):
        raise ValueError("capacities must be positive")
    return cnt, cap


def loads_from_counts(counts, capacities) -> np.ndarray:
    """Per-bin loads ``m_i / c_i`` as floats."""
    cnt, cap = _validate(counts, capacities)
    return cnt / cap


def normalized_load_vector(loads) -> np.ndarray:
    """The load vector sorted in non-increasing order."""
    arr = np.asarray(loads, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"loads must be one-dimensional, got shape {arr.shape}")
    return np.sort(arr)[::-1]


def slot_load_vector(counts, capacities) -> np.ndarray:
    """Per-slot ball counts under round-robin fill, in bin order.

    Bin ``i`` contributes ``c_i`` consecutive entries: the first
    ``m_i mod c_i`` hold ``⌊m_i/c_i⌋ + 1`` balls, the remainder
    ``⌊m_i/c_i⌋``.
    """
    cnt, cap = _validate(counts, capacities)
    total = int(cap.sum())
    out = np.empty(total, dtype=np.int64)
    pos = 0
    for m_i, c_i in zip(cnt.tolist(), cap.tolist()):
        q, r = divmod(m_i, c_i)
        out[pos : pos + r] = q + 1
        out[pos + r : pos + c_i] = q
        pos += c_i
    return out


def slot_owners_by_position(capacities) -> np.ndarray:
    """Owning bin index of each slot, aligned with :func:`slot_load_vector`."""
    cap = np.asarray(capacities, dtype=np.int64)
    if cap.ndim != 1 or np.any(cap <= 0):
        raise ValueError("capacities must be a 1-D vector of positive integers")
    return np.repeat(np.arange(cap.size, dtype=np.int64), cap)


def normalized_slot_load_vector(counts, capacities, *, return_owners: bool = False):
    """Slot values sorted by (value desc, owning-bin load desc).

    The secondary key is the paper's addition to the definition: "whenever we
    have slots with the same (slot) load but whose host bins have different
    loads, we place the one belonging to the bin with higher (bin) load
    before the other one".

    Examples
    --------
    The paper's example — bins ``a``, ``b`` with 4 slots each and loads 2.5
    and 2.75 (i.e. 10 and 11 balls):

    >>> vals, owners = normalized_slot_load_vector(
    ...     [10, 11], [4, 4], return_owners=True)
    >>> vals.tolist()
    [3, 3, 3, 3, 3, 2, 2, 2]
    >>> ['ab'[i] for i in owners]
    ['b', 'b', 'b', 'a', 'a', 'b', 'a', 'a']
    """
    cnt, cap = _validate(counts, capacities)
    values = slot_load_vector(cnt, cap)
    owners = slot_owners_by_position(cap)
    owner_loads = (cnt / cap)[owners]
    # lexsort: last key is primary.  Ties beyond (value, owner load) keep the
    # stable original order, which suffices for every use in the analysis.
    order = np.lexsort((-owner_loads, -values))
    if return_owners:
        return values[order], owners[order]
    return values[order]
