"""Ball-height bookkeeping (Observation 1's subject).

The *height* of a ball is the load of its bin immediately after the ball is
placed — for a bin with ``m_i`` balls before the allocation and capacity
``c_i`` the height is ``(m_i + 1) / c_i``.  (The paper's prose writes
``(ℓ_i + 1)/c_i`` with ``ℓ_i`` the *prior load*; read literally that double-
divides by ``c_i``, so — consistently with its use in Observation 1, where
big-bin heights are compared against the load bound 4 — we interpret
``ℓ_i`` there as the prior *ball count* and use the post-allocation load.)

Observation 1 splits balls into ``B_b`` (at least one big bin among the
``d`` choices) and ``B_s`` (all choices small) and bounds the height of
``B_b`` balls by a constant.  The helpers here compute those per-group
statistics from a simulation that recorded heights and choices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bins.classify import BigSmallSplit

__all__ = ["HeightSummary", "summarize_heights", "split_heights_by_big_contact"]


@dataclass(frozen=True)
class HeightSummary:
    """Aggregate statistics over a set of ball heights."""

    count: int
    max_height: float
    mean_height: float

    @classmethod
    def of(cls, heights: np.ndarray) -> "HeightSummary":
        arr = np.asarray(heights, dtype=np.float64)
        if arr.size == 0:
            return cls(count=0, max_height=float("nan"), mean_height=float("nan"))
        return cls(count=int(arr.size), max_height=float(arr.max()), mean_height=float(arr.mean()))


def summarize_heights(heights) -> HeightSummary:
    """Summary of all ball heights of a run."""
    return HeightSummary.of(np.asarray(heights))


def split_heights_by_big_contact(
    heights,
    choices,
    split: BigSmallSplit,
) -> tuple[HeightSummary, HeightSummary]:
    """Partition heights into (B_b, B_s) summaries per Observation 1.

    ``choices`` is the ``(m, d)`` matrix of candidate bins; a ball is in
    ``B_b`` when at least one of its candidates is a big bin of *split*.
    """
    h = np.asarray(heights, dtype=np.float64)
    ch = np.asarray(choices)
    if ch.ndim != 2 or ch.shape[0] != h.size:
        raise ValueError(
            f"choices {ch.shape} must be (m, d) with m == len(heights) == {h.size}"
        )
    big_mask = np.zeros(split.n_big + split.n_small, dtype=bool)
    big_mask[split.big_indices] = True
    touched_big = big_mask[ch].any(axis=1)
    return HeightSummary.of(h[touched_big]), HeightSummary.of(h[~touched_big])
