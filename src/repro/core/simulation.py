"""High-level simulation driver.

:func:`simulate` runs the paper's allocation process end to end: build a
selection distribution over the bins, draw every ball's ``d`` candidates in
vectorised batches, and feed them through the optimised sequential core
(:mod:`repro.core.fast`).  It returns a :class:`SimulationResult` holding the
final counts plus whatever optional instrumentation was requested (load
snapshots during the run, per-ball heights, the full choice matrix).

Defaults follow the paper: ``d = 2`` choices, probabilities proportional to
capacity, ``m = C`` balls, max-capacity tie-breaking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.distributions import probability_model
from ..sampling.rngutils import make_rng
from .compiled import resolve_threads, run_batch_compiled, use_compiled
from .fast import run_batch
from .wavefront import (
    RUNTIME_MIN_FREE_FRACTION,
    WavefrontStats,
    WavefrontWorkspace,
    effective_bins,
    get_mode,
    run_batch_wavefront,
    use_wavefront,
)

__all__ = ["Snapshot", "SimulationResult", "simulate"]

#: Balls whose choices are drawn per vectorised batch.  Large enough to
#: amortise the array round-trips, small enough to keep the working set in
#: cache.
DEFAULT_CHUNK_SIZE = 1 << 15


@dataclass(frozen=True)
class Snapshot:
    """Load statistics captured mid-run after ``balls_thrown`` balls."""

    balls_thrown: int
    max_load: float
    average_load: float

    @property
    def gap(self) -> float:
        """Deviation of the maximum from the average load (Figure 16's y-axis)."""
        return self.max_load - self.average_load


@dataclass
class SimulationResult:
    """Outcome of one allocation run.

    Attributes
    ----------
    bins:
        The simulated :class:`BinArray`.
    counts:
        Final per-bin ball counts, ``int64``, summing to ``m``.
    m, d:
        Number of balls thrown and choices per ball.
    probability:
        Name of the probability model used.
    tie_break:
        Tie-break policy applied.
    snapshots:
        Mid-run load statistics, if requested.
    heights:
        Per-ball heights in arrival order, if requested.
    choices:
        The full ``(m, d)`` choice matrix, if requested (memory-heavy;
        intended for small analytical runs).
    """

    bins: BinArray
    counts: np.ndarray
    m: int
    d: int
    probability: str
    tie_break: str
    snapshots: list[Snapshot] = field(default_factory=list)
    heights: np.ndarray | None = None
    choices: np.ndarray | None = None

    @property
    def loads(self) -> np.ndarray:
        """Per-bin loads ``m_i / c_i``."""
        return self.counts / self.bins.capacities

    @property
    def max_load(self) -> float:
        """``ℓ_max`` — the quantity every theorem bounds."""
        return float(self.loads.max())

    @property
    def average_load(self) -> float:
        """``m / C`` — the optimum is reached when every load equals this."""
        return self.m / self.bins.total_capacity

    @property
    def gap(self) -> float:
        """``ℓ_max − m/C``."""
        return self.max_load - self.average_load

    @property
    def argmax_bin(self) -> int:
        """Index of (the first) maximally loaded bin."""
        return int(np.argmax(self.loads))

    @property
    def argmax_capacity(self) -> int:
        """Capacity of the maximally loaded bin (Figures 7 and 9)."""
        return int(self.bins.capacities[self.argmax_bin])

    def max_load_of_class(self, capacity: int) -> float:
        """Maximum load among bins of exactly *capacity* (NaN if class empty)."""
        mask = self.bins.capacities == capacity
        if not mask.any():
            return float("nan")
        return float((self.counts[mask] / capacity).max())

    def __repr__(self) -> str:
        return (
            f"SimulationResult(n={self.bins.n}, m={self.m}, d={self.d}, "
            f"max_load={self.max_load:.4f})"
        )


def _normalise_snapshot_points(snapshot_at, m: int) -> list[int]:
    if snapshot_at is None:
        return []
    points = sorted({int(s) for s in snapshot_at})
    for s in points:
        if s < 0 or s > m:
            raise ValueError(f"snapshot point {s} outside [0, m={m}]")
    return points


def simulate(
    bins: BinArray,
    m: int | None = None,
    d: int = 2,
    *,
    probabilities="proportional",
    tie_break: str = "max_capacity",
    seed=None,
    snapshot_at=None,
    track_heights: bool = False,
    keep_choices: bool = False,
    sampler_method: str = "alias",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SimulationResult:
    """Throw *m* balls into *bins* with the greedy *d*-choice protocol.

    Parameters
    ----------
    bins:
        The bin array (capacities define both loads and, by default, the
        selection probabilities).
    m:
        Number of balls; defaults to the total capacity ``C`` (the paper's
        standing assumption ``m = C``).
    d:
        Choices per ball, ``>= 1`` (``d = 1`` degenerates to the one-choice
        baseline; the paper's theorems need ``d >= 2``).
    probabilities:
        Anything accepted by :func:`repro.sampling.distributions.probability_model`:
        ``"proportional"`` (default), ``"uniform"``, ``("power", t)``,
        ``("threshold", q)``, a model instance, or a raw weight vector.
    tie_break:
        ``"max_capacity"`` (Algorithm 1), ``"uniform"``, or ``"min_capacity"``.
    seed:
        Seed / ``SeedSequence`` / ``Generator`` for reproducibility.
    snapshot_at:
        Iterable of ball counts at which to record a :class:`Snapshot`
        (used by the heavily-loaded experiment, Figure 16).
    track_heights:
        Record every ball's height (post-allocation load of its bin).
    keep_choices:
        Retain the full ``(m, d)`` choice matrix on the result.  Memory is
        ``m * d * 8`` bytes — intended for analysis at small scale.
    sampler_method:
        ``"alias"`` or ``"cdf"`` backend for the weighted draws.
    chunk_size:
        Balls per vectorised sampling batch.

    Returns
    -------
    SimulationResult
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    if m is None:
        m = bins.total_capacity
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")

    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities, method=sampler_method)
    rng = make_rng(seed)

    caps_list = bins.capacities.tolist()
    all_choices: list[np.ndarray] | None = [] if keep_choices else None

    snap_points = _normalise_snapshot_points(snapshot_at, m)
    snapshots: list[Snapshot] = []
    total_capacity = bins.total_capacity
    caps_arr = bins.capacities

    # Backend + wavefront dispatch for the scalar engine: a single run is
    # the R = 1 ensemble.  Dispatch order is compiled > wavefront >
    # per-ball: the compiled tier (REPRO_BACKEND) takes whole chunks when
    # in force, else the conflict-free wavefront kernels replace the Python
    # per-ball loop whenever the expected first-wave fraction is high
    # enough.  All paths consume the identical pre-drawn randomness, so no
    # decision (nor the mid-run fallback below) can change the results.
    p = getattr(sampler, "probabilities", None)
    n_eff = effective_bins(p) if p is not None else float(bins.n)
    wf_auto = get_mode() == "auto"
    use_comp = use_compiled()
    use_wf = False if use_comp else use_wavefront(n_eff, 1, d)
    # A scalar run is the R = 1 ensemble: "auto" always resolves to 1
    # thread (nothing to split over prange), but an explicit REPRO_THREADS
    # budget is honored so the knob behaves identically on both drivers.
    comp_threads = resolve_threads(1, m) if use_comp else 1
    wf_stats = WavefrontStats()
    workspace = WavefrontWorkspace()
    if use_comp or use_wf:
        counts_arr: np.ndarray | None = np.zeros((1, bins.n), dtype=np.int64)
        counts: list[int] | None = None
        heights_arr = np.empty((1, m), dtype=np.float64) if track_heights else None
        heights: list[float] | None = None
    else:
        counts_arr = None
        counts = [0] * bins.n
        heights_arr = None
        heights = [] if track_heights else None

    def take_snapshot(balls_thrown: int) -> None:
        arr = counts_arr[0] if counts_arr is not None else np.asarray(counts, dtype=np.int64)
        loads = arr / caps_arr
        snapshots.append(
            Snapshot(
                balls_thrown=balls_thrown,
                max_load=float(loads.max()),
                average_load=balls_thrown / total_capacity,
            )
        )

    thrown = 0
    pending = list(snap_points)
    while pending and pending[0] == 0:
        take_snapshot(0)
        pending.pop(0)

    while thrown < m:
        upper = pending[0] if pending else m
        batch = min(chunk_size, upper - thrown)
        choices = sampler.sample((batch, d), rng)
        tie_u = rng.random(batch)
        if counts_arr is not None and use_comp:
            run_batch_compiled(
                counts_arr,
                caps_arr,
                choices[None, :, :],
                tie_u[None, :],
                tie_break=tie_break,
                heights=None
                if heights_arr is None
                else heights_arr[:, thrown : thrown + batch],
                threads=comp_threads,
            )
        elif counts_arr is not None:
            run_batch_wavefront(
                counts_arr,
                caps_arr,
                choices[None, :, :],
                tie_u[None, :],
                tie_break=tie_break,
                heights=None
                if heights_arr is None
                else heights_arr[:, thrown : thrown + batch],
                n_eff=n_eff,
                workspace=workspace,
                stats=wf_stats,
            )
            if wf_auto and wf_stats.free_fraction < RUNTIME_MIN_FREE_FRACTION:
                # The realised conflict rate defeats the wavefront: hand the
                # rest of the run to the per-ball loop, bit-identically.
                counts = counts_arr[0].tolist()
                counts_arr = None
                if heights_arr is not None:
                    heights = heights_arr[0, : thrown + batch].tolist()
                    heights_arr = None
        else:
            run_batch(counts, caps_list, choices, tie_u, tie_break=tie_break, heights=heights)
        if all_choices is not None:
            all_choices.append(choices)
        thrown += batch
        while pending and pending[0] == thrown:
            take_snapshot(thrown)
            pending.pop(0)

    if counts_arr is not None:
        final_counts = counts_arr[0]
        final_heights = heights_arr[0] if heights_arr is not None else None
    else:
        final_counts = np.asarray(counts, dtype=np.int64)
        final_heights = np.asarray(heights) if heights is not None else None

    return SimulationResult(
        bins=bins,
        counts=final_counts,
        m=m,
        d=d,
        probability=model.name,
        tie_break=tie_break,
        snapshots=snapshots,
        heights=final_heights,
        choices=np.concatenate(all_choices) if all_choices else (np.empty((0, d), dtype=np.int64) if keep_choices else None),
    )
