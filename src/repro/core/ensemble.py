"""Lockstep ensemble engine: all Monte-Carlo replications at once.

The greedy protocol is sequential *within* a run — ball ``j`` depends on the
loads left by balls ``1..j-1`` — which is why :mod:`repro.core.fast` keeps a
scalar inner loop.  The *other* axis of parallelism is free: the ``R``
independent replications every experiment averages over share no state, so
they can advance in lockstep.  Here ``counts`` is an ``(R, n)`` array, each
ball's candidates are an ``(R, d)`` slice of a pre-drawn ``(R, k, d)`` batch,
and one vectorised step resolves all ``R`` decisions, turning ``O(R * m)``
Python iterations into ``O(m)`` NumPy steps over ``R``-wide rows.

Equivalence contract
--------------------
Replication ``r`` of :func:`run_batch_ensemble` is *bit-identical* to running
:func:`repro.core.fast.run_batch` (and therefore
:func:`repro.core.protocol.reference_run` with the shared per-ball tie-uniform
convention) on ``counts[r]`` / ``choices[r]`` / ``tie_uniforms[r]``: the same
exact integer cross-multiplication comparison
``(m_a + 1) * c_b < (m_b + 1) * c_a``, the same three tie-break modes, and the
same tie-uniform consumption (ball ``j`` resolves its tie with
``tie_uniforms[r, j]``, consumed or not).

:func:`simulate_ensemble` extends the contract to whole runs: with
``seeds=[s_0, .., s_{R-1}]`` (or the default ``SeedSequence.spawn`` of a
master seed) replication ``r`` reproduces
``simulate(bins, seed=s_r, chunk_size=...)`` exactly, because each
replication's generator draws its choices and tie uniforms in the same order
and chunking as the scalar driver.  ``seed_mode="blocked"`` trades that
per-replication stream match for a single generator drawing ``(R, chunk, d)``
batches at once — statistically identical, a little faster, but not
stream-comparable to scalar runs.

The same engine/contract pair exists for the protocol variants:
:func:`repro.core.rounds.simulate_batched_ensemble` (stale-view batches),
:func:`repro.core.weighted.simulate_weighted_ensemble` (weighted balls) and
:func:`repro.p2p.workload.allocate_requests_ensemble` (ring allocation).

Backend and wavefront dispatch
------------------------------
Three kernel tiers implement the identical decision sequence, and
:func:`simulate_ensemble` picks among them in priority order **compiled >
wavefront > per-ball**.  When the compiled backend is in force
(``REPRO_BACKEND`` / :func:`repro.core.compiled.forced_backend`; ``auto``
selects it exactly when Numba is available) whole chunks go to
:func:`repro.core.compiled.run_batch_compiled`.  Otherwise, when the
expected conflict rate is low enough (many effective bins per lockstep
lane), chunks go to the conflict-free wavefront kernels of
:mod:`repro.core.wavefront` instead of the per-ball loops below —
committing independent balls in vectorised waves.  All tiers are
*bit-identical* (every kernel consumes the same pre-drawn choices and tie
uniforms, so dispatch can never change a number; the equivalence suite
forces each path and compares exactly).  The wavefront decision keys on
``n_eff / (R * d * d)`` with a realised-free-fraction runtime fallback;
``REPRO_WAVEFRONT`` / :func:`repro.core.wavefront.forced` override it.

Shared parameters per block
---------------------------
Lockstep replication requires every replication of a block to play against
the *same* instance — one capacity vector, one ball-size multiset, one ring.
Experiments whose scalar repetitions draw such parameters per repetition
(fig08/09, fig16, the random-caps ablations, ``rw_ring``, ``abl_weighted``)
therefore use the **shared-params-per-block** convention when running on
this engine:

* the executor partitions the replications into contiguous blocks and hands
  each block its child-seed slice (seed contract in
  :mod:`repro.runtime.executor`);
* the block derives one generator via
  :func:`repro.runtime.executor.block_parameter_rng` (a pure function of the
  block's **first** child seed), draws the block's shared parameters from
  it, and passes the same generator on as the ``seed_mode="blocked"``
  master.

*Why the estimator stays unbiased*: each replication of a block sees
parameters drawn from exactly the scalar per-repetition distribution, so
every replication-level summary has the scalar expectation; blocks draw
independently (disjoint children of one spawn), so the mean over all
replications is an unbiased estimator of the same quantity the scalar
engine estimates.  What changes is the *variance decomposition*: parameter
randomness is averaged over ``ceil(R / block_size)`` draws instead of
``R``, which is why these experiments force a small ``block_size``
(typically ``reps // 8``) instead of the executor's width-optimised
default.  Experiments with deterministic instances (fig01–07, fig10–15,
fig17/18, the remaining ablations) need none of this and use default-width
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.distributions import probability_model
from ..sampling.rngutils import make_rng, spawn_seed_sequences
from .compiled import resolve_threads, run_batch_compiled, use_compiled
from .simulation import DEFAULT_CHUNK_SIZE, _normalise_snapshot_points
from .wavefront import (
    RUNTIME_MIN_FREE_FRACTION,
    WavefrontStats,
    WavefrontWorkspace,
    d2_tie_pref,
    effective_bins,
    get_mode,
    run_batch_wavefront,
    use_wavefront,
    validate_lockstep_batch,
)

__all__ = [
    "run_batch_ensemble",
    "EnsembleSnapshot",
    "EnsembleResult",
    "simulate_ensemble",
    "SEED_MODES",
    "resolve_ensemble_seeds",
]

#: Recognised seeding modes for :func:`simulate_ensemble`.
SEED_MODES = ("spawn", "blocked")

def resolve_ensemble_seeds(repetitions, seeds, seed_mode):
    """Validate the shared ``(repetitions, seeds, seed_mode)`` driver knobs.

    Every lockstep driver (:func:`simulate_ensemble`,
    :func:`repro.core.rounds.simulate_batched_ensemble`,
    :func:`repro.core.weighted.simulate_weighted_ensemble`,
    :func:`repro.p2p.workload.allocate_requests_ensemble`) accepts the same
    seeding contract; this is its single implementation.  Returns the
    normalised ``(repetitions, seeds)`` pair — ``seeds`` as a list when
    given, else ``None`` (the caller spawns from its master seed).
    """
    if seed_mode not in SEED_MODES:
        raise ValueError(
            f"unknown seed_mode {seed_mode!r}; expected one of {SEED_MODES}"
        )
    if seeds is not None:
        seeds = list(seeds)
        if repetitions is not None and repetitions != len(seeds):
            raise ValueError(
                f"repetitions={repetitions} contradicts len(seeds)={len(seeds)}"
            )
        if seed_mode == "blocked":
            raise ValueError(
                "seeds= implies per-replication streams; it contradicts "
                "seed_mode='blocked' (pass a single master seed instead)"
            )
        repetitions = len(seeds)
    if repetitions is None or repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    return repetitions, seeds


#: Upper bound on ``R * k`` elements handled by one kernel call; the driver
#: sub-batches larger chunks so the per-ball working set stays cache-sized
#: without changing RNG consumption (sampling happens per *chunk*, not per
#: kernel call).
_KERNEL_TARGET = 1 << 20


def _ensemble_d2(flat, idx2, cap_cross, cap_own, tie_pref_b, heights, rbase=None):
    """d=2 lockstep loop over ``(k, 2, R)``-packed per-ball slices.

    ``idx2[j]`` stacks both candidates' flattened count indices as a
    ``(2, R)`` block so one ``take``/``multiply`` covers the pair;
    ``cap_cross[j]`` holds *twice* the other candidate's capacity (the
    cross-multiplication factor, pre-doubled for the tie bias below) and
    ``cap_own[j]`` the candidate's own capacity (only needed for heights).

    Tie-breaking is folded into the comparison exactly: with integer loads
    ``2*l_b - pref_b < 2*l_a``  iff  ``l_b < l_a  or  (l_b == l_a and
    pref_b)``, where ``pref_b`` (0/1, from ``tie_pref_b``) encodes the
    tie-break mode's preference for candidate b.  One subtraction and one
    ``less`` replace the less/equal/and/or cascade.
    """
    k = idx2.shape[0]
    R = idx2.shape[2]
    # Plain fancy indexing and ufuncs-with-out are the cheapest numpy entry
    # points at ensemble widths (no python-level np.take/np.choose wrappers);
    # `pick_b` is intp so the winner can be selected by integer indexing.
    if rbase is None:
        rbase = np.arange(R)
    l2 = np.empty((2, R), dtype=np.int64)
    pick_b = np.empty(R, dtype=np.intp)
    record = heights is not None
    for j in range(k):
        i2 = idx2[j]
        n2 = flat[i2]
        n2 += 1
        np.multiply(n2, cap_cross[j], out=l2)
        l2[1] -= tie_pref_b[j]
        np.less(l2[1], l2[0], out=pick_b)
        chosen = i2[pick_b, rbase]
        # Within one ball step every replication owns a distinct flat slot,
        # so the fancy increment is race-free.
        flat[chosen] += 1
        if record:
            heights[:, j] = flat[chosen] / cap_own[j][pick_b, rbase]


def _ensemble_d2_uniform(flat, idx2, tie_pref_b, capacity, heights, rbase=None):
    """d=2 lockstep loop specialised to equal capacities (Figures 1–5).

    With ``c_a == c_b == c`` the exact comparison
    ``(n_b + 1) * c - pref < (n_a + 1) * c``  collapses to the pure integer
    count test ``n_b < n_a + pref`` (``pref`` ∈ {0, 1} encodes the tie
    preference for b), removing the cross-multiplication entirely.
    """
    k = idx2.shape[0]
    R = idx2.shape[2]
    if rbase is None:
        rbase = np.arange(R)
    thresh = np.empty(R, dtype=np.int64)
    pick_b = np.empty(R, dtype=np.intp)
    record = heights is not None
    for j in range(k):
        i2 = idx2[j]
        n2 = flat[i2]
        # n_b < n_a + pref  ⇔  pick b (counts compare directly: equal caps).
        np.add(n2[0], tie_pref_b[j], out=thresh)
        np.less(n2[1], thresh, out=pick_b)
        chosen = i2[pick_b, rbase]
        flat[chosen] += 1
        if record:
            heights[:, j] = flat[chosen] / capacity


def _ensemble_general(flat, counts_idx, dens, tie_u, mode, heights, rbase=None):
    """General-d lockstep loop.

    ``counts_idx`` is ``(R, k, d)`` flattened count indices, ``dens`` the
    matching ``(R, k, d)`` capacities, ``tie_u`` the ``(R, k)`` tie uniforms.
    """
    R, k, d = counts_idx.shape
    rows_r = np.arange(R) if rbase is None else rbase
    record = heights is not None
    for j in range(k):
        idx_row = counts_idx[:, j, :]  # (R, d)
        den = dens[:, j, :]
        num = flat.take(idx_row) + 1
        # Tournament reduction to the exact minimum of num/den per row.
        best_num = num[:, 0].copy()
        best_den = den[:, 0].copy()
        for i in range(1, d):
            better = num[:, i] * best_den < best_num * den[:, i]
            np.copyto(best_num, num[:, i], where=better)
            np.copyto(best_den, den[:, i], where=better)
        # Membership: exactly the candidates achieving the minimum...
        mask = num * best_den[:, None] == best_num[:, None] * den
        # ...keeping only each bin's first occurrence (duplicates in the
        # multiset must not inflate the tie set, matching `b not in best`).
        for i in range(1, d):
            dup = idx_row[:, i] == idx_row[:, 0]
            for i2 in range(1, i):
                dup |= idx_row[:, i] == idx_row[:, i2]
            mask[:, i] &= ~dup
        if mode == 0:
            cmax = np.where(mask, den, -1).max(axis=1)
            mask &= den == cmax[:, None]
        elif mode == 2:
            cmin = np.where(mask, den, np.iinfo(np.int64).max).min(axis=1)
            mask &= den == cmin[:, None]
        tied = mask.sum(axis=1)
        sel = (tie_u[:, j] * tied).astype(np.int64)
        hit = (mask.cumsum(axis=1) == (sel + 1)[:, None]) & mask
        pos = hit.argmax(axis=1)
        idx = idx_row[rows_r, pos]
        flat[idx] += 1
        if record:
            heights[:, j] = flat.take(idx) / den[rows_r, pos]


def run_batch_ensemble(
    counts: np.ndarray,
    capacities,
    choices: np.ndarray,
    tie_uniforms: np.ndarray,
    *,
    tie_break: str = "max_capacity",
    heights: np.ndarray | None = None,
    workspace: WavefrontWorkspace | None = None,
) -> np.ndarray:
    """Allocate one batch of balls across all replications, in lockstep.

    Parameters
    ----------
    counts:
        ``(R, n)`` int64 array of current per-bin counts, mutated in place.
        Must be C-contiguous (the kernel works on the flattened view).
    capacities:
        ``(n,)`` shared capacities, or ``(R, n)`` per-replication capacities.
    choices:
        ``(R, k, d)`` integer array; ``choices[r, j]`` is replication ``r``'s
        candidate multiset for ball ``j``.
    tie_uniforms:
        ``(R, k)`` uniforms in ``[0, 1)``; ball ``j`` of replication ``r``
        resolves a surviving tie with ``tie_uniforms[r, j]`` (position-
        aligned, so unused entries cost nothing and streams never shift).
    tie_break:
        ``"max_capacity"`` (Algorithm 1), ``"uniform"``, ``"min_capacity"``.
    heights:
        Optional ``(R, k)`` float64 array; filled with every ball's height
        (post-allocation load of the receiving bin) when given.
    workspace:
        Optional :class:`~repro.core.wavefront.WavefrontWorkspace` reused
        across calls of one drive, so the row index/offset temporaries are
        allocated once per run instead of once per kernel call.

    Returns ``counts``.  Each replication is bit-identical to
    :func:`repro.core.fast.run_batch` on the matching slices.
    """
    mode, counts, caps, tie_uniforms = validate_lockstep_batch(
        counts, capacities, choices, tie_uniforms, tie_break, heights
    )
    R, n = counts.shape
    _, k, d = choices.shape
    if k == 0:
        return counts

    if workspace is not None:
        offsets = workspace.row_offsets(R, n)
        rbase = workspace.rbase(R)
    else:
        offsets = (np.arange(R, dtype=np.int64) * n)[:, None]
        rbase = None
    flat = counts.reshape(-1)

    if d == 2:
        cha = choices[:, :, 0]
        chb = choices[:, :, 1]
        uniform = caps.ndim == 1 and bool((caps == caps[0]).all())
        if uniform:
            # Equal capacities: every tie-break mode degenerates to the
            # fair coin, and the comparison needs no capacities at all.
            idx2 = np.empty((k, 2, R), dtype=np.int64)
            idx2[:, 0] = (cha + offsets).T
            idx2[:, 1] = (chb + offsets).T
            tie_pref_b = np.ascontiguousarray(
                (tie_uniforms >= 0.5).T.astype(np.int64)
            )
            _ensemble_d2_uniform(
                flat, idx2, tie_pref_b, int(caps[0]), heights, rbase
            )
            return counts
        if caps.ndim == 1:
            cap_a = caps[cha]
            cap_b = caps[chb]
        else:
            caps_flat = caps.reshape(-1)
            cap_a = caps_flat[cha + offsets]
            cap_b = caps_flat[chb + offsets]
        tie_pref_b = d2_tie_pref(mode, cap_a, cap_b, tie_uniforms)
        # Pack to (k, 2, R) so each per-ball slice is one contiguous block
        # covering both candidates; double the cross factors so the integer
        # tie bias (see _ensemble_d2) cannot collide with a genuine strict
        # inequality.
        idx2 = np.empty((k, 2, R), dtype=np.int64)
        idx2[:, 0] = (cha + offsets).T
        idx2[:, 1] = (chb + offsets).T
        cap_cross = np.empty((k, 2, R), dtype=np.int64)
        cap_cross[:, 0] = cap_b.T
        cap_cross[:, 1] = cap_a.T
        cap_cross *= 2
        cap_own = None
        if heights is not None:
            cap_own = np.empty((k, 2, R), dtype=np.int64)
            cap_own[:, 0] = cap_a.T
            cap_own[:, 1] = cap_b.T
        _ensemble_d2(
            flat, idx2, cap_cross, cap_own,
            np.ascontiguousarray(tie_pref_b.T.astype(np.int64)), heights, rbase,
        )
        return counts

    counts_idx = choices + offsets[:, None]
    if caps.ndim == 1:
        dens = caps[choices]
    else:
        dens = caps.reshape(-1)[counts_idx]
    _ensemble_general(flat, counts_idx, dens, tie_uniforms, mode, heights, rbase)
    return counts


@dataclass(frozen=True)
class EnsembleSnapshot:
    """Per-replication load statistics after ``balls_thrown`` balls."""

    balls_thrown: int
    max_loads: np.ndarray
    average_load: float

    @property
    def gaps(self) -> np.ndarray:
        """Per-replication deviation of the maximum from the average load."""
        return self.max_loads - self.average_load


@dataclass
class EnsembleResult:
    """Outcome of ``R`` lockstep replications of one allocation setting.

    ``counts`` has shape ``(R, n)``; row ``r`` is exactly what the scalar
    engine would have produced under the matching seed (``seed_mode="spawn"``).
    """

    bins: BinArray
    counts: np.ndarray
    m: int
    d: int
    repetitions: int
    probability: str
    tie_break: str
    seed_mode: str
    snapshots: list[EnsembleSnapshot] = field(default_factory=list)
    heights: np.ndarray | None = None
    _loads: np.ndarray | None = field(default=None, repr=False, compare=False)
    _max_loads: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def loads(self) -> np.ndarray:
        """``(R, n)`` per-bin loads ``m_i / c_i`` (computed once, cached —
        repeated access returns the same array object)."""
        if self._loads is None:
            self._loads = self.counts / self.bins.capacities
        return self._loads

    @property
    def max_loads(self) -> np.ndarray:
        """``(R,)`` per-replication maximum loads (cached like ``loads``)."""
        if self._max_loads is None:
            self._max_loads = self.loads.max(axis=1)
        return self._max_loads

    @property
    def average_load(self) -> float:
        """``m / C`` — shared by every replication."""
        return self.m / self.bins.total_capacity

    @property
    def gaps(self) -> np.ndarray:
        """``(R,)`` per-replication ``ℓ_max − m/C``."""
        return self.max_loads - self.average_load

    def __repr__(self) -> str:
        return (
            f"EnsembleResult(R={self.repetitions}, n={self.bins.n}, "
            f"m={self.m}, d={self.d})"
        )


def simulate_ensemble(
    bins: BinArray,
    repetitions: int | None = None,
    m: int | None = None,
    d: int = 2,
    *,
    probabilities="proportional",
    tie_break: str = "max_capacity",
    seed=None,
    seeds=None,
    seed_mode: str = "spawn",
    snapshot_at=None,
    track_heights: bool = False,
    sampler_method: str = "alias",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> EnsembleResult:
    """Throw *m* balls into *bins*, ``R`` replications in lockstep.

    Parameters mirror :func:`repro.core.simulation.simulate`; the extras:

    repetitions:
        Number of lockstep replications ``R`` (ignored when *seeds* is given).
    seeds:
        Explicit per-replication seeds (ints / ``SeedSequence`` /
        ``Generator``).  Replication ``r`` then reproduces
        ``simulate(bins, seed=seeds[r], ...)`` bit-exactly.  When omitted,
        ``R`` child seeds are spawned from *seed* in ``SeedSequence.spawn``
        order — the same order :func:`repro.runtime.executor.run_repetitions`
        hands to scalar repetitions.
    seed_mode:
        ``"spawn"`` (default): one generator per replication, stream-matched
        to the scalar engine.  ``"blocked"``: a single generator draws whole
        ``(R, chunk, d)`` batches — faster, statistically identical, but not
        comparable stream-for-stream with scalar runs.
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    repetitions, seeds = resolve_ensemble_seeds(repetitions, seeds, seed_mode)
    if m is None:
        m = bins.total_capacity
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")

    R = repetitions
    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities, method=sampler_method)
    if seed_mode == "spawn":
        if seeds is None:
            seeds = spawn_seed_sequences(seed, R)
        gens = [make_rng(s) for s in seeds]
        block_rng = None
    else:
        gens = None
        block_rng = make_rng(seed)

    n = bins.n
    counts = np.zeros((R, n), dtype=np.int64)
    caps_arr = bins.capacities
    total_capacity = bins.total_capacity
    heights = np.empty((R, m), dtype=np.float64) if track_heights else None

    snap_points = _normalise_snapshot_points(snapshot_at, m)
    snapshots: list[EnsembleSnapshot] = []
    loads_buf = np.empty((R, n), dtype=np.float64) if snap_points else None

    def take_snapshot(balls_thrown: int) -> None:
        np.divide(counts, caps_arr, out=loads_buf)
        snapshots.append(
            EnsembleSnapshot(
                balls_thrown=balls_thrown,
                max_loads=loads_buf.max(axis=1),
                average_load=balls_thrown / total_capacity,
            )
        )

    thrown = 0
    pending = list(snap_points)
    while pending and pending[0] == 0:
        take_snapshot(0)
        pending.pop(0)

    # Backend + wavefront dispatch, in priority order compiled > wavefront
    # > per-ball: the compiled tier (REPRO_BACKEND) takes whole chunks when
    # in force; otherwise the conflict-free wavefront kernels enter when
    # the expected first-wave fraction is high enough (auto mode keys on
    # the collision-equivalent bin count of the selection distribution),
    # with a fall back to the per-ball kernels for the rest of the run if
    # the realised fraction disappoints.  Every path consumes the identical
    # pre-drawn randomness, so no dispatch decision can change the results.
    workspace = WavefrontWorkspace()
    wf_stats = WavefrontStats()
    wf_auto = get_mode() == "auto"
    p = getattr(sampler, "probabilities", None)
    n_eff = effective_bins(p) if p is not None else float(n)
    use_comp = use_compiled()
    use_wf = False if use_comp else use_wavefront(n_eff, R, d)
    # Thread budget resolved once per run, like the backend: REPRO_THREADS
    # "auto" = min(cores, R) once the whole run clears the work-size floor
    # (per-chunk resolution would flip kernels mid-run — harmless for the
    # numbers, noisy for the profile).
    comp_threads = resolve_threads(R, R * m) if use_comp else 1

    kernel_block = max(1, _KERNEL_TARGET // max(R, 1))
    while thrown < m:
        upper = pending[0] if pending else m
        batch = min(chunk_size, upper - thrown)
        if gens is not None:
            choices = np.empty((R, batch, d), dtype=np.int64)
            tie_u = np.empty((R, batch), dtype=np.float64)
            for r, g in enumerate(gens):
                choices[r] = sampler.sample((batch, d), g)
                tie_u[r] = g.random(batch)
        else:
            choices = sampler.sample((R, batch, d), block_rng)
            tie_u = block_rng.random((R, batch))
        chunk_heights = None if heights is None else heights[:, thrown : thrown + batch]
        if use_comp:
            run_batch_compiled(
                counts,
                caps_arr,
                choices,
                tie_u,
                tie_break=tie_break,
                heights=chunk_heights,
                threads=comp_threads,
            )
        elif use_wf:
            run_batch_wavefront(
                counts,
                caps_arr,
                choices,
                tie_u,
                tie_break=tie_break,
                heights=chunk_heights,
                n_eff=n_eff,
                workspace=workspace,
                stats=wf_stats,
            )
            if wf_auto and wf_stats.free_fraction < RUNTIME_MIN_FREE_FRACTION:
                use_wf = False
        else:
            # Sub-batch the kernel (not the sampling!) so temporaries stay
            # bounded; RNG consumption is untouched by this split.
            for lo in range(0, batch, kernel_block):
                hi = min(batch, lo + kernel_block)
                run_batch_ensemble(
                    counts,
                    caps_arr,
                    choices[:, lo:hi],
                    tie_u[:, lo:hi],
                    tie_break=tie_break,
                    heights=None
                    if chunk_heights is None
                    else chunk_heights[:, lo:hi],
                    workspace=workspace,
                )
        thrown += batch
        while pending and pending[0] == thrown:
            take_snapshot(thrown)
            pending.pop(0)

    return EnsembleResult(
        bins=bins,
        counts=counts,
        m=m,
        d=d,
        repetitions=R,
        probability=model.name,
        tie_break=tie_break,
        seed_mode=seed_mode,
        snapshots=snapshots,
        heights=heights,
    )
