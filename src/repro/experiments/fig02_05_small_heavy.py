"""Figures 2–5 — 32 uniform bins under increasing ball counts (Section 4.1).

Paper setting: ``n = 32`` uniform bins of capacity ``c ∈ {1, 2, 3, 4}``;
``m = k·C`` balls for ``k ∈ {1, 10, 100, 1000}`` (one figure per ``k``);
sorted load profiles averaged over 10,000 runs.

Expected shape: the *absolute* deviation of each curve from the average
load ``m/C`` is essentially invariant in ``k`` (the heavily-loaded
invariance of [Berenbrink et al. 2000], the paper's Observation 2) — the
``k = 10/100/1000`` figures "look identical" up to a vertical shift.  The
per-capacity gap (max − average) is recorded in ``extra`` so the invariance
is directly checkable across the four experiments.
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import StreamingProfile
from ..analysis.precision import AdaptiveRecorder
from ..bins.generators import uniform_bins
from ..core.ensemble import simulate_ensemble
from ..core.simulation import simulate
from ..runtime.executor import run_ensemble_reduced, run_repetitions
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_N = 32
PAPER_CAPACITIES = (1, 2, 3, 4)
PAPER_REPS = 10_000
PAPER_D = 2


def _one_run(seed, *, n: int, capacity: int, d: int, multiplier: int) -> np.ndarray:
    bins = uniform_bins(n, capacity)
    res = simulate(bins, m=multiplier * bins.total_capacity, d=d, seed=seed)
    return res.loads


def _ensemble_block(
    seeds, *, n: int, capacity: int, d: int, multiplier: int
) -> StreamingProfile:
    """Lockstep block: all of the block's replications advance together
    through one ``(R, n)`` counts array; only the reduced sorted-profile
    moments leave the worker."""
    bins = uniform_bins(n, capacity)
    res = simulate_ensemble(
        bins,
        repetitions=len(seeds),
        m=multiplier * bins.total_capacity,
        d=d,
        seed=seeds[0],
        seed_mode="blocked",
    )
    return StreamingProfile(n).update(res.loads)


def _run_figure(figure_id: str, multiplier: int, scale, seed, workers, progress,
                n, capacities, d, repetitions, engine, block_size,
                checkpoint, precision) -> ExperimentResult:
    engine = resolve_engine(engine)
    recorder = AdaptiveRecorder(precision, engine=engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    block_size = recorder.block_size(reps, block_size)
    series: dict[str, np.ndarray] = {}
    gaps: dict[str, float] = {}
    for j, c in enumerate(capacities):
        class_seed = np.random.SeedSequence(seed).spawn(len(capacities))[j]
        kwargs = {"n": n, "capacity": int(c), "d": d, "multiplier": multiplier}
        if engine == "ensemble":
            reducer = run_ensemble_reduced(
                _ensemble_block, reps, seed=class_seed, workers=workers,
                kwargs=kwargs, progress=progress,
                block_size=block_size, checkpoint=checkpoint, label=figure_id,
                until=recorder.monitor(f"c={c}"),
            )
            mean_profile = reducer.profile().mean
        else:
            loads = run_repetitions(
                _one_run, reps, seed=class_seed, workers=workers,
                kwargs=kwargs, progress=progress, label=figure_id,
            )
            matrix = np.vstack(loads)
            mean_profile = (-np.sort(-matrix, axis=1)).mean(axis=0)
        series[f"{c}-bins"] = mean_profile
        gaps[f"c={c}"] = float(mean_profile[0] - multiplier)
    extra = {
        "average_load": float(multiplier),
        "gap_above_average": gaps,
        "invariance_note": "gap should match the other fig02-05 multipliers",
    }
    recorder.annotate(extra, budget_per_run=reps)
    return ExperimentResult(
        experiment_id=figure_id,
        title=f"32 uniform bins, m = {multiplier}*C: mean sorted load profile",
        x_name="bin_rank",
        x_values=np.arange(n),
        series=series,
        parameters={
            "n": n,
            "d": d,
            "capacities": list(capacities),
            "ball_multiplier": multiplier,
            "repetitions": reps,
            "seed": seed,
            "engine": engine,
        },
        extra=extra,
    )


def _make_runner(figure_id: str, multiplier: int):
    def run(
        scale: float = 0.01,
        seed=20260612,
        workers: int | None = 1,
        progress=None,
        *,
        n: int = PAPER_N,
        capacities=PAPER_CAPACITIES,
        d: int = PAPER_D,
        repetitions: int | None = None,
        engine: str = "scalar",
        block_size: int | None = None,
        checkpoint=None,
        precision=None,
    ) -> ExperimentResult:
        return _run_figure(
            figure_id, multiplier, scale, seed, workers, progress, n, capacities, d,
            repetitions, engine, block_size, checkpoint, precision,
        )

    run.__doc__ = (
        f"Figure {figure_id[-1]} runner: 32 uniform bins, m = {multiplier} * C."
    )
    return run


run_fig02 = register(
    "fig02", "32 uniform bins, m=C", "Figure 2",
    "n=32 uniform bins, c in {1..4}, m=C; mean sorted load profile",
    adaptive=True,
)(_make_runner("fig02", 1))

run_fig03 = register(
    "fig03", "32 uniform bins, m=10C", "Figure 3",
    "n=32 uniform bins, c in {1..4}, m=10*C; mean sorted load profile",
    adaptive=True,
)(_make_runner("fig03", 10))

run_fig04 = register(
    "fig04", "32 uniform bins, m=100C", "Figure 4",
    "n=32 uniform bins, c in {1..4}, m=100*C; mean sorted load profile",
    adaptive=True,
)(_make_runner("fig04", 100))

run_fig05 = register(
    "fig05", "32 uniform bins, m=1000C", "Figure 5",
    "n=32 uniform bins, c in {1..4}, m=1000*C; mean sorted load profile",
    adaptive=True,
)(_make_runner("fig05", 1000))
