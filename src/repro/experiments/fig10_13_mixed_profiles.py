"""Figures 10–13 — mixed-array load profiles at fixed class ratios (Sec 4.2).

Paper settings, all with ``m = C`` and probabilities proportional to
capacity, averaged over 10,000 runs:

* **Figure 10** — 32 bins of capacities 1 and 2; ratio of 2-bins
  0/8/16/24/32; sorted profile over all bins.
* **Figure 11** — 10,000 bins of capacities 1 and 8; ratio of 8-bins
  0/2,500/5,000/7,500/10,000; sorted profile over all bins.
* **Figure 12** — same arrays; profile restricted to the capacity-8 bins.
* **Figure 13** — same arrays; profile restricted to the capacity-1 bins.

Expected shape: "the more large bins we have, the more even the load
distribution becomes"; the class-8 curves stay below ≈1.8 (constant — the
big bins of Observation 1), while the class-1 curves carry the higher
maxima.  Curves for absent ratios (no bins of that class) are NaN-padded.
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import StreamingProfile
from ..bins.generators import two_class_mix_bins
from ..core.ensemble import simulate_ensemble
from ..core.simulation import simulate
from ..runtime.executor import run_ensemble_reduced, run_repetitions
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_REPS = 10_000
PAPER_D = 2


def _restrict_columns(matrix: np.ndarray, restrict, n: int, n_large: int) -> np.ndarray:
    """Slice a ``(R, n)`` load matrix to the requested capacity class."""
    if restrict == "large":
        return matrix[:, n - n_large :] if n_large else matrix[:, :0]
    if restrict == "small":
        return matrix[:, : n - n_large]
    return matrix


def _one_run(seed, *, n: int, n_large: int, small_cap: int, large_cap: int, d: int):
    bins = two_class_mix_bins(n, n_large, small_cap, large_cap)
    res = simulate(bins, d=d, seed=seed)
    return res.loads


def _ensemble_block(seeds, *, n: int, n_large: int, small_cap: int, large_cap: int,
                    d: int, restrict):
    """Lockstep block: one ``(R, n)`` counts array per block; the restricted
    sorted-profile reducer (never the raw matrix) leaves the worker."""
    bins = two_class_mix_bins(n, n_large, small_cap, large_cap)
    res = simulate_ensemble(
        bins, repetitions=len(seeds), d=d, seed=seeds[0], seed_mode="blocked"
    )
    restricted = _restrict_columns(res.loads, restrict, n, n_large)
    return StreamingProfile(restricted.shape[1]).update(restricted)


def _profiles(scale, seed, workers, progress, n, small_cap, large_cap, d,
              large_counts, restrict, repetitions, engine, block_size,
              checkpoint, label):
    """Mean sorted profiles per ratio; ``restrict`` in {None, 'small', 'large'}."""
    engine = resolve_engine(engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    seeds = np.random.SeedSequence(seed).spawn(len(large_counts))
    series: dict[str, np.ndarray] = {}
    for i, n_large in enumerate(large_counts):
        n_large = int(n_large)
        name = f"{n_large}x{large_cap}-bins"
        width = {"large": n_large, "small": n - n_large}.get(restrict, n)
        if width == 0:
            series[name] = np.full(n, np.nan)
            continue
        kwargs = {
            "n": n, "n_large": n_large,
            "small_cap": small_cap, "large_cap": large_cap, "d": d,
        }
        if engine == "ensemble":
            reducer = run_ensemble_reduced(
                _ensemble_block, reps, seed=seeds[i], workers=workers,
                kwargs={**kwargs, "restrict": restrict}, progress=progress,
                block_size=block_size, checkpoint=checkpoint, label=label,
            )
            profile = reducer.profile().mean
        else:
            outs = run_repetitions(
                _one_run, reps, seed=seeds[i], workers=workers,
                kwargs=kwargs, progress=progress, label=label,
            )
            matrix = _restrict_columns(np.vstack(outs), restrict, n, n_large)
            profile = (-np.sort(-matrix, axis=1)).mean(axis=0)
        padded = np.full(n, np.nan)
        padded[: profile.size] = profile
        series[name] = padded
    return series, reps, engine


def _make_runner(figure_id, title, n, small_cap, large_cap, large_counts, restrict, shape_note):
    def run(
        scale: float = 0.01,
        seed=20260612,
        workers: int | None = 1,
        progress=None,
        *,
        d: int = PAPER_D,
        repetitions: int | None = None,
        engine: str = "scalar",
        block_size: int | None = None,
        checkpoint=None,
    ) -> ExperimentResult:
        series, reps, engine = _profiles(
            scale, seed, workers, progress, n, small_cap, large_cap, d,
            large_counts, restrict, repetitions, engine, block_size,
            checkpoint, figure_id,
        )
        return ExperimentResult(
            experiment_id=figure_id,
            title=title,
            x_name="bin_rank",
            x_values=np.arange(n),
            series=series,
            parameters={
                "n": n, "d": d, "small_cap": small_cap, "large_cap": large_cap,
                "large_counts": [int(x) for x in large_counts],
                "restrict": restrict, "repetitions": reps, "seed": seed,
                "engine": engine,
            },
            extra={"expected_shape": shape_note},
        )

    run.__doc__ = f"{figure_id} runner: {title}."
    return run


run_fig10 = register(
    "fig10", "32 bins of capacities 1 and 2: profiles per ratio", "Figure 10",
    "32 bins mixing capacities 1 and 2 at ratios 0/8/16/24/32; mean sorted profiles",
)(_make_runner(
    "fig10", "32 bins of capacity 1 and 2", 32, 1, 2, (0, 8, 16, 24, 32), None,
    "curves flatten towards 1 as the number of 2-bins grows",
))

run_fig11 = register(
    "fig11", "10,000 bins of capacities 1 and 8: profiles per ratio", "Figure 11",
    "10,000 bins mixing capacities 1 and 8 at ratios 0/2500/5000/7500/10000; mean sorted profiles",
)(_make_runner(
    "fig11", "10,000 bins of capacity 1 and 8", 10_000, 1, 8,
    (0, 2_500, 5_000, 7_500, 10_000), None,
    "curves flatten towards 1 as the number of 8-bins grows",
))

run_fig12 = register(
    "fig12", "Capacities 1 and 8: load of the capacity-8 bins", "Figure 12",
    "Same arrays as fig11; sorted profile restricted to the capacity-8 bins",
)(_make_runner(
    "fig12", "Bins of capacities 1 and 8: capacity-8 bins only", 10_000, 1, 8,
    (2_500, 5_000, 7_500, 10_000), "large",
    "large-bin loads stay below a small constant (Observation 1)",
))

run_fig13 = register(
    "fig13", "Capacities 1 and 8: load of the capacity-1 bins", "Figure 13",
    "Same arrays as fig11; sorted profile restricted to the capacity-1 bins",
)(_make_runner(
    "fig13", "Bins of capacities 1 and 8: capacity-1 bins only", 10_000, 1, 8,
    (0, 2_500, 5_000, 7_500), "small",
    "small-bin maxima exceed the large-bin maxima; decrease with more 8-bins",
))
