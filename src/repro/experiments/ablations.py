"""Ablation experiments — the design choices DESIGN.md calls out.

Registered alongside the figure experiments (ids ``abl_*``) so the CLI and
report generator treat them uniformly:

* ``abl_tiebreak`` — Algorithm 1's max-capacity tie-break vs uniform vs the
  inverse rule, across the large-bin fraction (the step-3 justification:
  "it is beneficial to move the load into the direction of these bigger
  bins");
* ``abl_probability`` — capacity-proportional vs uniform selection across
  capacity skew (the introduction's "natural 1/n or c_i/C" fork);
* ``abl_d`` — the lnln(n)/ln(d) dependence on the number of choices;
* ``abl_staleness`` — batched arrivals: max load vs batch size (stale-view
  robustness of the protocol; extension).
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import StreamingScalar
from ..analysis.precision import AdaptiveRecorder
from ..bins.generators import two_class_bins, uniform_bins
from ..core.ensemble import simulate_ensemble
from ..core.rounds import simulate_batched, simulate_batched_ensemble
from ..core.simulation import simulate
from ..runtime.executor import run_ensemble_reduced, run_repetitions
from ..theory.bounds import loglog_over_logd
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_REPS = 10_000


def _mean_over_reps(scalar_task, ensemble_task, reps, seed, workers, progress,
                    kwargs, engine, block_size=None, checkpoint=None,
                    label=None, until=None) -> float:
    """Mean of a per-repetition scalar on either engine.

    Every ablation point reduces to one mean; the ensemble path runs the
    matching lockstep block task and reads the merged
    :class:`~repro.analysis.aggregate.StreamingScalar`.
    """
    if engine == "ensemble":
        reducer = run_ensemble_reduced(
            ensemble_task, reps, seed=seed, workers=workers,
            kwargs=kwargs, progress=progress,
            block_size=block_size, checkpoint=checkpoint, label=label,
            until=until,
        )
        return float(reducer.mean)
    outs = run_repetitions(
        scalar_task, reps, seed=seed, workers=workers,
        kwargs=kwargs, progress=progress, label=label,
    )
    return float(np.mean(outs))


def _tiebreak_task(seed, *, n, n_large, small_cap, large_cap, tie_break):
    bins = two_class_bins(n - n_large, n_large, small_cap, large_cap)
    return simulate(bins, tie_break=tie_break, seed=seed).max_load


def _tiebreak_block(seeds, *, n, n_large, small_cap, large_cap, tie_break):
    bins = two_class_bins(n - n_large, n_large, small_cap, large_cap)
    res = simulate_ensemble(
        bins, repetitions=len(seeds), tie_break=tie_break,
        seed=seeds[0], seed_mode="blocked",
    )
    return StreamingScalar().update(res.max_loads)


@register(
    "abl_tiebreak",
    "Ablation: tie-break policy across the class mix",
    "Ablation (step 3 of Algorithm 1)",
    "caps 1 and 2, n=1000; mean max load per tie-break policy vs % large bins",
    adaptive=True,
)
def run_abl_tiebreak(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = 1000,
    small_cap: int = 1,
    large_cap: int = 2,
    fractions=(10, 30, 50, 70, 90),
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
    precision=None,
) -> ExperimentResult:
    """Mean max load for each tie-break policy over the class-mix sweep."""
    engine = resolve_engine(engine)
    recorder = AdaptiveRecorder(precision, engine=engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    block_size = recorder.block_size(reps, block_size)
    policies = ("max_capacity", "uniform", "min_capacity")
    seeds = np.random.SeedSequence(seed).spawn(len(policies))
    series = {}
    for policy, s in zip(policies, seeds):
        pt_seeds = s.spawn(len(fractions))
        curve = []
        for pct, ps in zip(fractions, pt_seeds):
            curve.append(_mean_over_reps(
                _tiebreak_task, _tiebreak_block, reps, ps, workers, progress,
                {
                    "n": n, "n_large": int(round(n * pct / 100)),
                    "small_cap": small_cap, "large_cap": large_cap,
                    "tie_break": policy,
                },
                engine, block_size, checkpoint, "abl_tiebreak",
                recorder.monitor(f"{policy}/pct={pct}"),
            ))
        series[policy] = np.asarray(curve)
    extra = {"expected_shape": "max_capacity at or below the alternatives everywhere"}
    recorder.annotate(extra, budget_per_run=reps)
    return ExperimentResult(
        experiment_id="abl_tiebreak",
        title="Tie-break policy ablation (caps 1 and 2)",
        x_name="percentage_large_bins",
        x_values=np.asarray(fractions, dtype=np.float64),
        series=series,
        parameters={"n": n, "small_cap": small_cap, "large_cap": large_cap,
                    "repetitions": reps, "seed": seed, "engine": engine},
        extra=extra,
    )


def _probability_task(seed, *, n, n_large, large_cap, probabilities):
    bins = two_class_bins(n - n_large, n_large, 1, large_cap)
    return simulate(bins, probabilities=probabilities, seed=seed).max_load


def _probability_block(seeds, *, n, n_large, large_cap, probabilities):
    bins = two_class_bins(n - n_large, n_large, 1, large_cap)
    res = simulate_ensemble(
        bins, repetitions=len(seeds), probabilities=probabilities,
        seed=seeds[0], seed_mode="blocked",
    )
    return StreamingScalar().update(res.max_loads)


@register(
    "abl_probability",
    "Ablation: proportional vs uniform selection",
    "Ablation (Section 1's probability fork)",
    "10% large bins of growing capacity; mean max load per selection model",
    adaptive=True,
)
def run_abl_probability(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = 1000,
    large_caps=(2, 4, 8, 16, 32),
    large_fraction: float = 0.1,
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
    precision=None,
) -> ExperimentResult:
    """Mean max load, proportional vs uniform, as the skew grows."""
    engine = resolve_engine(engine)
    recorder = AdaptiveRecorder(precision, engine=engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    block_size = recorder.block_size(reps, block_size)
    models = ("proportional", "uniform")
    seeds = np.random.SeedSequence(seed).spawn(len(models))
    n_large = int(round(n * large_fraction))
    series = {}
    for model, s in zip(models, seeds):
        pt_seeds = s.spawn(len(large_caps))
        curve = []
        for cap, ps in zip(large_caps, pt_seeds):
            curve.append(_mean_over_reps(
                _probability_task, _probability_block, reps, ps, workers,
                progress,
                {"n": n, "n_large": n_large, "large_cap": int(cap),
                 "probabilities": model},
                engine, block_size, checkpoint, "abl_probability",
                recorder.monitor(f"{model}/cap={cap}"),
            ))
        series[model] = np.asarray(curve)
    extra = {"expected_shape": "proportional at or below uniform, gap widening with skew"}
    recorder.annotate(extra, budget_per_run=reps)
    return ExperimentResult(
        experiment_id="abl_probability",
        title="Selection-probability ablation (10% large bins)",
        x_name="large_bin_capacity",
        x_values=np.asarray(large_caps, dtype=np.float64),
        series=series,
        parameters={"n": n, "large_fraction": large_fraction,
                    "repetitions": reps, "seed": seed, "engine": engine},
        extra=extra,
    )


def _d_task(seed, *, n, d):
    bins = two_class_bins(n // 2, n // 2, 1, 8)
    return simulate(bins, d=d, seed=seed).max_load


def _d_block(seeds, *, n, d):
    bins = two_class_bins(n // 2, n // 2, 1, 8)
    res = simulate_ensemble(
        bins, repetitions=len(seeds), d=d, seed=seeds[0], seed_mode="blocked"
    )
    return StreamingScalar().update(res.max_loads)


@register(
    "abl_d",
    "Ablation: number of choices d",
    "Ablation (Theorem 3's ln d)",
    "caps 1 and 8, n=2000; mean max load vs d, against lnln(n)/ln(d)",
    adaptive=True,
)
def run_abl_d(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = 2000,
    d_values=(1, 2, 3, 4, 6, 8),
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
    precision=None,
) -> ExperimentResult:
    """Mean max load per d, with the Theorem-3 leading term for reference."""
    engine = resolve_engine(engine)
    recorder = AdaptiveRecorder(precision, engine=engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    block_size = recorder.block_size(reps, block_size)
    seeds = np.random.SeedSequence(seed).spawn(len(d_values))
    measured = []
    for d, s in zip(d_values, seeds):
        measured.append(_mean_over_reps(
            _d_task, _d_block, reps, s, workers, progress,
            {"n": n, "d": int(d)}, engine, block_size, checkpoint, "abl_d",
            recorder.monitor(f"d={d}"),
        ))
    theory = [
        float("nan") if d < 2 else 1.0 + loglog_over_logd(n, int(d))
        for d in d_values
    ]
    extra = {"expected_shape": "steep d=1->2 drop, then diminishing returns tracking 1/ln d"}
    recorder.annotate(extra, budget_per_run=reps)
    return ExperimentResult(
        experiment_id="abl_d",
        title="Choices ablation: max load vs d",
        x_name="d",
        x_values=np.asarray(d_values, dtype=np.float64),
        series={"measured": np.asarray(measured), "1 + lnln(n)/ln(d)": np.asarray(theory)},
        parameters={"n": n, "repetitions": reps, "seed": seed, "engine": engine},
        extra=extra,
    )


def _staleness_task(seed, *, n, batch_size):
    bins = uniform_bins(n, 1)
    return simulate_batched(bins, batch_size=batch_size, seed=seed).max_load


def _staleness_block(seeds, *, n, batch_size):
    bins = uniform_bins(n, 1)
    res = simulate_batched_ensemble(
        bins, repetitions=len(seeds), batch_size=batch_size,
        seed=seeds[0], seed_mode="blocked",
    )
    return StreamingScalar().update(res.max_loads)


@register(
    "abl_staleness",
    "Ablation: batched arrivals with stale loads",
    "Ablation (extension: stale views)",
    "n=1000 unit bins, m=n; mean max load vs batch size",
    adaptive=True,
)
def run_abl_staleness(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = 1000,
    batch_sizes=(1, 4, 16, 64, 256, 1000),
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
    precision=None,
) -> ExperimentResult:
    """Mean max load as the freshness of the load view degrades."""
    engine = resolve_engine(engine)
    recorder = AdaptiveRecorder(precision, engine=engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    block_size = recorder.block_size(reps, block_size)
    seeds = np.random.SeedSequence(seed).spawn(len(batch_sizes))
    curve = []
    for b, s in zip(batch_sizes, seeds):
        curve.append(_mean_over_reps(
            _staleness_task, _staleness_block, reps, s, workers, progress,
            {"n": n, "batch_size": int(b)}, engine, block_size, checkpoint,
            "abl_staleness", recorder.monitor(f"batch={b}"),
        ))
    extra = {"expected_shape": "non-decreasing in batch size; batch=m stays below one-choice"}
    recorder.annotate(extra, budget_per_run=reps)
    return ExperimentResult(
        experiment_id="abl_staleness",
        title="Staleness ablation: max load vs batch size",
        x_name="batch_size",
        x_values=np.asarray(batch_sizes, dtype=np.float64),
        series={"max_load": np.asarray(curve)},
        parameters={"n": n, "repetitions": reps, "seed": seed, "engine": engine},
        extra=extra,
    )
