"""Ablation experiments — the design choices DESIGN.md calls out.

Registered alongside the figure experiments (ids ``abl_*``) so the CLI and
report generator treat them uniformly:

* ``abl_tiebreak`` — Algorithm 1's max-capacity tie-break vs uniform vs the
  inverse rule, across the large-bin fraction (the step-3 justification:
  "it is beneficial to move the load into the direction of these bigger
  bins");
* ``abl_probability`` — capacity-proportional vs uniform selection across
  capacity skew (the introduction's "natural 1/n or c_i/C" fork);
* ``abl_d`` — the lnln(n)/ln(d) dependence on the number of choices;
* ``abl_staleness`` — batched arrivals: max load vs batch size (stale-view
  robustness of the protocol; extension).
"""

from __future__ import annotations

import numpy as np

from ..bins.generators import two_class_bins, uniform_bins
from ..core.rounds import simulate_batched
from ..core.simulation import simulate
from ..runtime.executor import run_repetitions
from ..theory.bounds import loglog_over_logd
from .base import ExperimentResult, register, scaled_reps

PAPER_REPS = 10_000


def _tiebreak_task(seed, *, n, n_large, small_cap, large_cap, tie_break):
    bins = two_class_bins(n - n_large, n_large, small_cap, large_cap)
    return simulate(bins, tie_break=tie_break, seed=seed).max_load


@register(
    "abl_tiebreak",
    "Ablation: tie-break policy across the class mix",
    "Ablation (step 3 of Algorithm 1)",
    "caps 1 and 2, n=1000; mean max load per tie-break policy vs % large bins",
)
def run_abl_tiebreak(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = 1000,
    small_cap: int = 1,
    large_cap: int = 2,
    fractions=(10, 30, 50, 70, 90),
    repetitions: int | None = None,
) -> ExperimentResult:
    """Mean max load for each tie-break policy over the class-mix sweep."""
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    policies = ("max_capacity", "uniform", "min_capacity")
    seeds = np.random.SeedSequence(seed).spawn(len(policies))
    series = {}
    for policy, s in zip(policies, seeds):
        pt_seeds = s.spawn(len(fractions))
        curve = []
        for pct, ps in zip(fractions, pt_seeds):
            outs = run_repetitions(
                _tiebreak_task,
                reps,
                seed=ps,
                workers=workers,
                kwargs={
                    "n": n, "n_large": int(round(n * pct / 100)),
                    "small_cap": small_cap, "large_cap": large_cap,
                    "tie_break": policy,
                },
                progress=progress,
            )
            curve.append(float(np.mean(outs)))
        series[policy] = np.asarray(curve)
    return ExperimentResult(
        experiment_id="abl_tiebreak",
        title="Tie-break policy ablation (caps 1 and 2)",
        x_name="percentage_large_bins",
        x_values=np.asarray(fractions, dtype=np.float64),
        series=series,
        parameters={"n": n, "small_cap": small_cap, "large_cap": large_cap,
                    "repetitions": reps, "seed": seed},
        extra={"expected_shape": "max_capacity at or below the alternatives everywhere"},
    )


def _probability_task(seed, *, n, n_large, large_cap, probabilities):
    bins = two_class_bins(n - n_large, n_large, 1, large_cap)
    return simulate(bins, probabilities=probabilities, seed=seed).max_load


@register(
    "abl_probability",
    "Ablation: proportional vs uniform selection",
    "Ablation (Section 1's probability fork)",
    "10% large bins of growing capacity; mean max load per selection model",
)
def run_abl_probability(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = 1000,
    large_caps=(2, 4, 8, 16, 32),
    large_fraction: float = 0.1,
    repetitions: int | None = None,
) -> ExperimentResult:
    """Mean max load, proportional vs uniform, as the skew grows."""
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    models = ("proportional", "uniform")
    seeds = np.random.SeedSequence(seed).spawn(len(models))
    n_large = int(round(n * large_fraction))
    series = {}
    for model, s in zip(models, seeds):
        pt_seeds = s.spawn(len(large_caps))
        curve = []
        for cap, ps in zip(large_caps, pt_seeds):
            outs = run_repetitions(
                _probability_task,
                reps,
                seed=ps,
                workers=workers,
                kwargs={"n": n, "n_large": n_large, "large_cap": int(cap),
                        "probabilities": model},
                progress=progress,
            )
            curve.append(float(np.mean(outs)))
        series[model] = np.asarray(curve)
    return ExperimentResult(
        experiment_id="abl_probability",
        title="Selection-probability ablation (10% large bins)",
        x_name="large_bin_capacity",
        x_values=np.asarray(large_caps, dtype=np.float64),
        series=series,
        parameters={"n": n, "large_fraction": large_fraction,
                    "repetitions": reps, "seed": seed},
        extra={"expected_shape": "proportional at or below uniform, gap widening with skew"},
    )


def _d_task(seed, *, n, d):
    bins = two_class_bins(n // 2, n // 2, 1, 8)
    return simulate(bins, d=d, seed=seed).max_load


@register(
    "abl_d",
    "Ablation: number of choices d",
    "Ablation (Theorem 3's ln d)",
    "caps 1 and 8, n=2000; mean max load vs d, against lnln(n)/ln(d)",
)
def run_abl_d(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = 2000,
    d_values=(1, 2, 3, 4, 6, 8),
    repetitions: int | None = None,
) -> ExperimentResult:
    """Mean max load per d, with the Theorem-3 leading term for reference."""
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    seeds = np.random.SeedSequence(seed).spawn(len(d_values))
    measured = []
    for d, s in zip(d_values, seeds):
        outs = run_repetitions(
            _d_task, reps, seed=s, workers=workers,
            kwargs={"n": n, "d": int(d)}, progress=progress,
        )
        measured.append(float(np.mean(outs)))
    theory = [
        float("nan") if d < 2 else 1.0 + loglog_over_logd(n, int(d))
        for d in d_values
    ]
    return ExperimentResult(
        experiment_id="abl_d",
        title="Choices ablation: max load vs d",
        x_name="d",
        x_values=np.asarray(d_values, dtype=np.float64),
        series={"measured": np.asarray(measured), "1 + lnln(n)/ln(d)": np.asarray(theory)},
        parameters={"n": n, "repetitions": reps, "seed": seed},
        extra={"expected_shape": "steep d=1->2 drop, then diminishing returns tracking 1/ln d"},
    )


def _staleness_task(seed, *, n, batch_size):
    bins = uniform_bins(n, 1)
    return simulate_batched(bins, batch_size=batch_size, seed=seed).max_load


@register(
    "abl_staleness",
    "Ablation: batched arrivals with stale loads",
    "Ablation (extension: stale views)",
    "n=1000 unit bins, m=n; mean max load vs batch size",
)
def run_abl_staleness(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = 1000,
    batch_sizes=(1, 4, 16, 64, 256, 1000),
    repetitions: int | None = None,
) -> ExperimentResult:
    """Mean max load as the freshness of the load view degrades."""
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    seeds = np.random.SeedSequence(seed).spawn(len(batch_sizes))
    curve = []
    for b, s in zip(batch_sizes, seeds):
        outs = run_repetitions(
            _staleness_task, reps, seed=s, workers=workers,
            kwargs={"n": n, "batch_size": int(b)}, progress=progress,
        )
        curve.append(float(np.mean(outs)))
    return ExperimentResult(
        experiment_id="abl_staleness",
        title="Staleness ablation: max load vs batch size",
        x_name="batch_size",
        x_values=np.asarray(batch_sizes, dtype=np.float64),
        series={"max_load": np.asarray(curve)},
        parameters={"n": n, "repetitions": reps, "seed": seed},
        extra={"expected_shape": "non-decreasing in batch size; batch=m stays below one-choice"},
    )
