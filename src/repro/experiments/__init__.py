"""Per-figure experiments reproducing the paper's evaluation (Section 4)."""

from .base import (
    ExperimentResult,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    register,
    scaled_reps,
)
from .request import RunRequest
from .runner import execute_request, run_all, run_experiment

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "RunRequest",
    "register",
    "get_experiment",
    "list_experiments",
    "scaled_reps",
    "run_experiment",
    "execute_request",
    "run_all",
]
