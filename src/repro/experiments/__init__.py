"""Per-figure experiments reproducing the paper's evaluation (Section 4)."""

from .base import (
    ExperimentResult,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    register,
    scaled_reps,
)
from .runner import run_all, run_experiment

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "register",
    "get_experiment",
    "list_experiments",
    "scaled_reps",
    "run_experiment",
    "run_all",
]
