"""Experiment framework: result records, registry, scaling.

Every figure of the paper's Section 4 is one registered experiment.  An
experiment is a function ``run(scale, seed, workers, progress, **overrides)``
returning an :class:`ExperimentResult`: a shared x-grid plus named series —
exactly the data behind one plot.  The registry lets the CLI, the benchmark
harness and EXPERIMENTS.md address experiments by figure id (``"fig06"``).

Scaling
-------
The paper averages most figures over 10,000 repetitions (Figure 17 over
1,000,000).  ``scale`` multiplies the repetition counts (floored at a small
minimum) so that ``scale=1.0`` is paper-scale and the default CLI scale
produces minutes-level runs; the estimators are unchanged, only their
variance grows at small scale.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..io.asciiplot import ascii_plot, ascii_table
from ..io.csvio import write_series_csv
from ..io.jsonio import dump_json
from .request import RunRequest

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "RunRequest",
    "register",
    "get_experiment",
    "list_experiments",
    "scaled_reps",
    "ENGINES",
    "EngineNotSupportedError",
    "PrecisionNotSupportedError",
    "resolve_engine",
]


class EngineNotSupportedError(ValueError):
    """An experiment was asked for an engine it has not been migrated to."""


class PrecisionNotSupportedError(ValueError):
    """A precision target was requested where it cannot be honored.

    Raised declaratively by :meth:`ExperimentSpec.request_kwargs` — either
    the experiment has not opted into adaptive precision
    (``register(..., adaptive=True)``), or the request targets the scalar
    engine, which has no block stream for the monitor to ride.
    """

#: Execution engines an experiment can run its repetitions on:
#: ``"scalar"`` — one sequential run per repetition (the reference path);
#: ``"ensemble"`` — lockstep replication blocks through
#: :func:`repro.core.ensemble.simulate_ensemble` (the vectorised fast path).
ENGINES = ("scalar", "ensemble")


def resolve_engine(engine: str) -> str:
    """Validate an engine name against :data:`ENGINES`."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def scaled_reps(paper_reps: int, scale: float, minimum: int = 3) -> int:
    """Repetition count at *scale* (``scale=1`` → the paper's count)."""
    if paper_reps <= 0:
        raise ValueError(f"paper_reps must be positive, got {paper_reps}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(paper_reps * scale)))


@dataclass
class ExperimentResult:
    """The numeric content of one figure.

    ``series`` maps a curve name to y-values over ``x_values``; curves of
    unequal natural length (e.g. per-class profiles) are NaN-padded to the
    grid.  ``extra`` carries figure-specific scalars (plateaus, fitted
    constants, theory predictions) for EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    x_name: str
    x_values: np.ndarray
    series: dict[str, np.ndarray]
    parameters: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        self.x_values = np.asarray(self.x_values)
        clean = {}
        for name, ys in self.series.items():
            arr = np.asarray(ys, dtype=np.float64)
            if arr.shape != self.x_values.shape:
                raise ValueError(
                    f"series {name!r} has shape {arr.shape}, expected {self.x_values.shape}"
                )
            clean[name] = arr
        self.series = clean

    def save(self, directory) -> tuple[Path, Path]:
        """Persist as ``<id>.csv`` (series) + ``<id>.json`` (provenance).

        Both writes are atomic (tmp file + ``os.replace`` via
        :mod:`repro.io.atomicio`, the same helper the result store uses), so
        concurrent sweep workers targeting one output directory cannot leave
        torn artifacts.
        """
        directory = Path(directory)
        csv_path = write_series_csv(
            directory / f"{self.experiment_id}.csv", self.x_name, self.x_values, self.series
        )
        json_path = dump_json(
            directory / f"{self.experiment_id}.json",
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "x_name": self.x_name,
                "parameters": self.parameters,
                "extra": self.extra,
                "series_names": list(self.series),
            },
        )
        return csv_path, json_path

    def render(self, *, width: int = 72, height: int = 18, max_rows: int = 12) -> str:
        """ASCII plot plus a head/tail table of the series rows."""
        plot = ascii_plot(
            self.x_values,
            self.series,
            width=width,
            height=height,
            title=f"{self.experiment_id}: {self.title}",
            x_label=self.x_name,
        )
        headers = [self.x_name, *self.series.keys()]
        n = self.x_values.size
        if n <= max_rows:
            idx = range(n)
        else:
            half = max_rows // 2
            idx = [*range(half), *range(n - half, n)]
        rows = []
        prev = -1
        for i in idx:
            if prev >= 0 and i != prev + 1:
                rows.append(["..."] * len(headers))
            rows.append(
                [float(self.x_values[i]), *(float(self.series[s][i]) for s in self.series)]
            )
            prev = i
        return plot + "\n\n" + ascii_table(headers, rows)

    def summary_rows(self) -> list[tuple]:
        """(series, min, max, first, last) rows for quick textual summaries."""
        out = []
        for name, ys in self.series.items():
            finite = ys[np.isfinite(ys)]
            if finite.size == 0:
                out.append((name, float("nan"),) * 4)
                continue
            out.append(
                (name, float(finite.min()), float(finite.max()), float(finite[0]), float(finite[-1]))
            )
        return out


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: metadata plus the run callable.

    ``version`` feeds :meth:`repro.experiments.request.RunRequest.cache_key`
    — bump it in :func:`register` whenever the experiment's semantics change
    (the same events that move golden tests), so stale store entries can
    never be mistaken for the new behaviour.  ``engines`` declares which
    repetition engines the experiment supports; the full registry supports
    both (enforced by the cross-engine suite), and a future not-yet-migrated
    experiment registering ``engines=("scalar",)`` gets the documented
    :class:`EngineNotSupportedError` instead of a silent fallback.
    ``adaptive`` declares that the runner honors a ``precision=`` target
    (CI-driven early stopping over its ensemble block stream); requests
    carrying a target for a non-adaptive experiment raise the documented
    :class:`PrecisionNotSupportedError` instead of silently running the
    full budget.
    """

    experiment_id: str
    title: str
    figure: str
    description: str
    run: Callable[..., ExperimentResult]
    version: int = 1
    engines: tuple = ENGINES
    adaptive: bool = False

    def request_kwargs(self, request: RunRequest) -> dict:
        """Translate a :class:`RunRequest` into ``run()`` keyword arguments.

        Raises :class:`EngineNotSupportedError` when the request targets an
        engine this experiment does not declare — the only remaining guard
        for a future unmigrated experiment, replacing the retired
        ``inspect.signature`` sniffing.
        """
        if request.experiment_id != self.experiment_id:
            raise ValueError(
                f"request for {request.experiment_id!r} handed to spec "
                f"{self.experiment_id!r}"
            )
        kwargs = request.overrides_dict()
        if request.scale is not None:
            kwargs["scale"] = request.scale
        if request.seed is not None:
            kwargs["seed"] = request.seed
        if request.engine is not None:
            engine = resolve_engine(request.engine)
            if engine not in self.engines:
                raise EngineNotSupportedError(
                    f"experiment {self.experiment_id!r} only supports engines "
                    f"{self.engines}; engine={engine!r} is not available for it"
                )
            kwargs["engine"] = engine
        if request.block_size is not None:
            kwargs["block_size"] = request.block_size
        if request.precision is not None:
            if not self.adaptive:
                raise PrecisionNotSupportedError(
                    f"experiment {self.experiment_id!r} does not support "
                    f"adaptive precision targets (its runner was registered "
                    f"without adaptive=True)"
                )
            if request.effective_engine() != "ensemble":
                raise PrecisionNotSupportedError(
                    "adaptive precision rides the ensemble block stream; "
                    f"request engine='ensemble' for {self.experiment_id!r} "
                    f"(got {request.effective_engine()!r})"
                )
            kwargs["precision"] = request.precision_target()
        kwargs["workers"] = request.workers
        return kwargs

    def execute(
        self, request: RunRequest, *, progress=None, checkpoint=None
    ) -> ExperimentResult:
        """Run this experiment as described by *request*.

        ``checkpoint`` (a :class:`repro.io.store.Checkpointer`, usually
        handed out by the runner from the result store) lets the ensemble
        executor persist merged-so-far reducer state at block boundaries so
        an interrupted run resumes instead of recomputing.

        Adaptive provenance: a run executed under a precision target must
        report replications-used and achieved half-widths in
        ``result.extra["adaptive"]`` (the runner's
        :class:`~repro.analysis.precision.AdaptiveRecorder` writes it); a
        runner that accepted the target but reported nothing is a bug and
        fails loudly here rather than impersonating a fixed-budget result.
        """
        result = self.run(
            progress=progress, checkpoint=checkpoint, **self.request_kwargs(request)
        )
        if request.precision is not None and "adaptive" not in result.extra:
            raise RuntimeError(
                f"experiment {self.experiment_id!r} accepted a precision "
                f"target but reported no adaptive provenance in result.extra"
            )
        return result


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(
    experiment_id: str,
    title: str,
    figure: str,
    description: str,
    *,
    version: int = 1,
    engines: tuple = ENGINES,
    adaptive: bool = False,
):
    """Decorator registering a ``run``-style function under *experiment_id*.

    ``version`` is the cache-key bump field (see :class:`ExperimentSpec`);
    ``engines`` declares the supported repetition engines; ``adaptive``
    declares that the runner honors a ``precision=`` early-stop target.
    """

    def wrap(func: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ValueError(f"experiment id {experiment_id!r} registered twice")
        _REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            figure=figure,
            description=description,
            run=func,
            version=version,
            engines=tuple(engines),
            adaptive=adaptive,
        )
        return func

    return wrap


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment (raises ``KeyError`` with guidance)."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from None


def list_experiments() -> list[ExperimentSpec]:
    """All registered experiments, sorted by id."""
    _ensure_loaded()
    return [
        _REGISTRY[k] for k in sorted(_REGISTRY)
    ]


def _ensure_loaded() -> None:
    """Import the figure modules so their registrations run."""
    from . import (  # noqa: F401
        ablations,
        fig01_uniform_profiles,
        fig02_05_small_heavy,
        fig06_07_two_class,
        fig08_09_random_caps,
        fig10_13_mixed_profiles,
        fig14_15_growth,
        fig16_heavy,
        fig17_18_exponent,
        related_work,
    )
