"""Figures 17–18 — optimising the probability exponent (Section 4.5).

Paper setting: ``n = 100`` bins, half of capacity 1 and half of capacity
``x``; ``m = C = 50·(x+1)``; selection probability of a capacity-``c`` bin
is ``c^t / Σ_j c_j^t``.  Figure 18 plots the mean maximum load against the
exponent ``t`` for ``x ∈ {2, .., 6}``; Figure 17 plots, for each
``x ∈ {2, .., 14}``, the exponent minimising the mean maximum load (the
paper averages each grid point over 1,000,000 runs and reports, e.g.,
``t* ≈ 2.1`` for ``x = 3``).

Expected shape: every Figure-18 curve is roughly convex in ``t`` with its
minimum strictly above ``t = 1`` — proportional selection is *not* optimal
for strongly mixed arrays — and Figure 17's optimal exponent is well above
1 across the capacity range.
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import StreamingScalar
from ..analysis.precision import AdaptiveRecorder
from ..bins.generators import two_class_bins
from ..core.ensemble import simulate_ensemble
from ..core.simulation import simulate
from ..runtime.executor import run_ensemble_reduced, run_repetitions
from ..sampling.distributions import PowerProbability
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_N = 100
PAPER_REPS = 1_000_000
PAPER_D = 2
PAPER_FIG18_CAPS = (2, 3, 4, 5, 6)
PAPER_FIG17_CAPS = tuple(range(2, 15))
#: Exponent grid; the paper scans t in {1, 1.005, .., 3} (fig 17) and plots
#: 0..3.5 (fig 18).  A coarser default grid keeps scaled runs affordable.
DEFAULT_T_GRID_FIG18 = tuple(np.round(np.arange(0.0, 3.5 + 0.25, 0.25), 4))
DEFAULT_T_GRID_FIG17 = tuple(np.round(np.arange(1.0, 3.0 + 0.1, 0.1), 4))


def _one_run(seed, *, x: int, t: float, n: int, d: int) -> float:
    bins = two_class_bins(n // 2, n - n // 2, 1, x)
    res = simulate(bins, d=d, probabilities=PowerProbability(t), seed=seed)
    return res.max_load


def _ensemble_block(seeds, *, x: int, t: float, n: int, d: int) -> StreamingScalar:
    """Lockstep block for one ``(x, t)`` grid point: the two-class array and
    the power-``t`` selection weights are deterministic, so the block runs in
    lockstep and ships only the max-load moments."""
    bins = two_class_bins(n // 2, n - n // 2, 1, x)
    res = simulate_ensemble(
        bins, repetitions=len(seeds), d=d, probabilities=PowerProbability(t),
        seed=seeds[0], seed_mode="blocked",
    )
    return StreamingScalar().update(res.max_loads)


def _mean_max_load(x, t, reps, seed, workers, progress, n, d, engine,
                   block_size, checkpoint, label, until=None) -> float:
    kwargs = {"x": int(x), "t": float(t), "n": n, "d": d}
    if engine == "ensemble":
        reducer = run_ensemble_reduced(
            _ensemble_block, reps, seed=seed, workers=workers,
            kwargs=kwargs, progress=progress,
            block_size=block_size, checkpoint=checkpoint, label=label,
            until=until,
        )
        return float(reducer.mean)
    outs = run_repetitions(
        _one_run, reps, seed=seed, workers=workers,
        kwargs=kwargs, progress=progress, label=label,
    )
    return float(np.mean(outs))


@register(
    "fig18",
    "Max load as a function of the probability exponent",
    "Figure 18",
    "n=100, half cap-1 half cap-x (x=2..6), p ~ c^t; mean max load vs t",
    adaptive=True,
)
def run_fig18(
    scale: float = 0.0002,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = PAPER_N,
    d: int = PAPER_D,
    capacities=PAPER_FIG18_CAPS,
    t_grid=DEFAULT_T_GRID_FIG18,
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
    precision=None,
) -> ExperimentResult:
    """Figure 18: mean max load vs exponent t for each big-bin capacity."""
    engine = resolve_engine(engine)
    recorder = AdaptiveRecorder(precision, engine=engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale, minimum=20)
    block_size = recorder.block_size(reps, block_size)
    t_values = np.asarray(t_grid, dtype=np.float64)
    seeds = np.random.SeedSequence(seed).spawn(len(capacities))
    series: dict[str, np.ndarray] = {}
    minima: dict[str, float] = {}
    for x, s in zip(capacities, seeds):
        t_seeds = s.spawn(len(t_values))
        curve = np.asarray(
            [
                _mean_max_load(x, t, reps, ts, workers, progress, n, d, engine,
                               block_size, checkpoint, "fig18",
                               recorder.monitor(f"x={x},t={t:g}"))
                for t, ts in zip(t_values, t_seeds)
            ]
        )
        name = f"capacities 1 and {x}"
        series[name] = curve
        minima[name] = float(t_values[int(np.argmin(curve))])
    extra = {
        "argmin_exponent": minima,
        "expected_shape": "convex-ish curves with minima strictly above t=1",
    }
    recorder.annotate(extra, budget_per_run=reps)
    return ExperimentResult(
        experiment_id="fig18",
        title="Max load for different exponents and capacities",
        x_name="exponent",
        x_values=t_values,
        series=series,
        parameters={
            "n": n, "d": d, "capacities": [int(x) for x in capacities],
            "t_grid": [float(t) for t in t_values], "repetitions": reps, "seed": seed,
            "engine": engine,
        },
        extra=extra,
    )


@register(
    "fig17",
    "Optimal probability exponent per big-bin capacity",
    "Figure 17",
    "n=100, half cap-1 half cap-x (x=2..14), p ~ c^t; exponent minimising mean max load",
    adaptive=True,
)
def run_fig17(
    scale: float = 0.0002,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = PAPER_N,
    d: int = PAPER_D,
    capacities=PAPER_FIG17_CAPS,
    t_grid=DEFAULT_T_GRID_FIG17,
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
    precision=None,
) -> ExperimentResult:
    """Figure 17: the argmin-over-t exponent for each big-bin capacity x."""
    engine = resolve_engine(engine)
    recorder = AdaptiveRecorder(precision, engine=engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale, minimum=20)
    block_size = recorder.block_size(reps, block_size)
    t_values = np.asarray(t_grid, dtype=np.float64)
    seeds = np.random.SeedSequence(seed).spawn(len(capacities))
    optimal = np.empty(len(capacities))
    curves: dict[str, list[float]] = {}
    for i, (x, s) in enumerate(zip(capacities, seeds)):
        t_seeds = s.spawn(len(t_values))
        curve = np.asarray(
            [
                _mean_max_load(x, t, reps, ts, workers, progress, n, d, engine,
                               block_size, checkpoint, "fig17",
                               recorder.monitor(f"x={x},t={t:g}"))
                for t, ts in zip(t_values, t_seeds)
            ]
        )
        optimal[i] = t_values[int(np.argmin(curve))]
        curves[f"x={x}"] = [float(v) for v in curve]
    extra = {
        "curves": curves,
        "expected_shape": "optimal exponent clearly above 1 (e.g. ~2.1 at x=3)",
    }
    recorder.annotate(extra, budget_per_run=reps)
    return ExperimentResult(
        experiment_id="fig17",
        title="Optimal exponent for different capacities",
        x_name="capacity_of_big_bin",
        x_values=np.asarray(capacities, dtype=np.float64),
        series={"optimal_exponent": optimal},
        parameters={
            "n": n, "d": d, "capacities": [int(x) for x in capacities],
            "t_grid": [float(t) for t in t_values], "repetitions": reps, "seed": seed,
            "engine": engine,
        },
        extra=extra,
    )
