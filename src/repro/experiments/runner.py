"""Execute registered experiments and persist their results."""

from __future__ import annotations

import inspect
import time
from pathlib import Path

from .base import (
    EngineNotSupportedError,
    ExperimentResult,
    get_experiment,
    list_experiments,
    resolve_engine,
)

__all__ = ["run_experiment", "run_all"]


def run_experiment(
    experiment_id: str,
    *,
    scale: float | None = None,
    seed=None,
    workers: int | None = 1,
    progress=None,
    out_dir=None,
    engine: str | None = None,
    **overrides,
) -> ExperimentResult:
    """Run one experiment by id and optionally save CSV/JSON to *out_dir*.

    ``scale``/``seed`` fall back to the experiment's own defaults when
    ``None``; ``overrides`` are forwarded verbatim (e.g. ``repetitions=50``,
    ``n=1000``).  ``engine`` selects the repetition engine
    (:data:`repro.experiments.base.ENGINES`); every registered experiment
    supports both engines (the cross-engine suite in
    ``tests/core/test_ensemble.py`` enforces full coverage), and the
    :class:`EngineNotSupportedError` path below remains only as a loud guard
    for a future experiment that has not been migrated yet — never a silent
    fallback.
    """
    spec = get_experiment(experiment_id)
    kwargs = dict(overrides)
    if scale is not None:
        kwargs["scale"] = scale
    if seed is not None:
        kwargs["seed"] = seed
    if engine is not None:
        engine = resolve_engine(engine)
        if "engine" in inspect.signature(spec.run).parameters:
            kwargs["engine"] = engine
        elif engine != "scalar":
            raise EngineNotSupportedError(
                f"experiment {experiment_id!r} only supports the scalar engine; "
                f"engine={engine!r} is not available for it yet"
            )
    started = time.perf_counter()
    result = spec.run(workers=workers, progress=progress, **kwargs)
    result.extra.setdefault("wall_seconds", round(time.perf_counter() - started, 3))
    if out_dir is not None:
        result.save(Path(out_dir))
    return result


def run_all(
    *,
    scale: float | None = None,
    seed=None,
    workers: int | None = 1,
    progress=None,
    out_dir=None,
    only=None,
    engine: str | None = None,
) -> dict[str, ExperimentResult]:
    """Run every registered experiment (or the ids in *only*).

    ``engine`` is applied where supported — today that is the whole
    registry; the signature inspection only spares a future not-yet-migrated
    experiment, which then runs on its scalar path instead of aborting the
    whole sweep.
    """
    wanted = set(only) if only is not None else None
    results: dict[str, ExperimentResult] = {}
    for spec in list_experiments():
        if wanted is not None and spec.experiment_id not in wanted:
            continue
        spec_engine = engine
        if (
            engine is not None
            and "engine" not in inspect.signature(spec.run).parameters
        ):
            spec_engine = None
        results[spec.experiment_id] = run_experiment(
            spec.experiment_id,
            scale=scale,
            seed=seed,
            workers=workers,
            progress=progress,
            out_dir=out_dir,
            engine=spec_engine,
        )
    return results
