"""Execute experiments as declarative requests, through the result store.

This module is the execution stage of the run pipeline:

1. **Plan** — the caller describes the run as a
   :class:`~repro.experiments.request.RunRequest` (or passes the same
   fields as keyword arguments and one is built here);
2. **Store** — with ``store=`` given, :func:`run_experiment` is
   cache-hit-or-compute against the content-addressed
   :class:`~repro.io.store.ResultStore` under the request's cache key;
3. **Resume** — computed runs execute with a checkpointer from the same
   store, so an interrupted ensemble run restarts from its last completed
   block slab instead of from scratch.

Engine selection is first-class on every registered spec
(``ExperimentSpec.engines``): the old ``inspect.signature`` sniffing is
retired, and the only remaining guard is the declarative
:class:`~repro.experiments.base.EngineNotSupportedError` raise for a future
experiment registered with a reduced engine set.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..io.store import resolve_store
from .base import (
    ExperimentResult,
    ExperimentSpec,
    get_experiment,
    list_experiments,
)
from .request import RunRequest

__all__ = ["run_experiment", "run_all", "RunOutcome"]

#: Sentinel distinguishing "caller did not pass workers" from an explicit
#: value (``None`` itself is meaningful: it means all CPUs).
_UNSET = object()


class RunOutcome:
    """A result plus how it was obtained (for front ends that report cache
    behaviour; :func:`run_experiment` returns just the result)."""

    __slots__ = ("request", "key", "result", "cache_hit", "resumed", "wall_seconds")

    def __init__(self, *, request, key, result, cache_hit, resumed, wall_seconds):
        self.request = request
        self.key = key
        self.result = result
        self.cache_hit = cache_hit
        self.resumed = resumed
        self.wall_seconds = wall_seconds


def as_run_request(
    experiment,
    *,
    scale=None,
    seed=None,
    engine=None,
    workers=_UNSET,
    block_size=None,
    overrides=None,
    precision=None,
) -> RunRequest:
    """Build the canonical request for *experiment* (id string or an
    already-built :class:`RunRequest`, which is returned unchanged provided
    no conflicting fields are given)."""
    if isinstance(experiment, RunRequest):
        if overrides or workers is not _UNSET or any(
            v is not None for v in (scale, seed, engine, block_size, precision)
        ):
            raise ValueError(
                "pass run parameters either inside the RunRequest or as "
                "keyword arguments, not both"
            )
        return experiment
    return RunRequest(
        experiment_id=experiment,
        scale=scale,
        seed=seed,
        engine=engine,
        workers=1 if workers is _UNSET else workers,
        block_size=block_size,
        overrides=overrides or (),
        precision=precision,
    )


def execute_request(
    request: RunRequest,
    *,
    progress=None,
    out_dir=None,
    store=None,
    fabric=None,
) -> RunOutcome:
    """Run one request through the store; the full-fidelity entry point.

    With a store: a present key is a pure lookup (zero simulation work);
    a missing key computes with block checkpoints namespaced under the key,
    stores the result, and drops the checkpoints.  Without a store the run
    always computes (and cannot resume).

    ``fabric`` (a :class:`~repro.runtime.fabric.FabricSession`) routes the
    run's fixed-budget ensemble blocks over the session's worker fleet
    instead of the in-process paths — bit-identical by the fabric clause of
    the seed contract, and deliberately **not** part of the cache key, like
    ``workers``: execution placement never changes a number.  Adaptive
    (precision-targeted) runs ignore it and execute locally.
    """
    spec: ExperimentSpec = get_experiment(request.experiment_id)
    store = resolve_store(store)
    key = request.cache_key(version=spec.version)
    started = time.perf_counter()
    if store is not None:
        cached = store.get(key)
        if cached is not None:
            result = cached.result
            if out_dir is not None:
                result.save(Path(out_dir))
            return RunOutcome(
                request=request,
                key=key,
                result=result,
                cache_hit=True,
                resumed=False,
                wall_seconds=time.perf_counter() - started,
            )
    checkpoint = store.checkpointer(key) if store is not None else None
    resumed = bool(checkpoint is not None and checkpoint.has_state())
    if fabric is not None:
        with fabric.activate():
            result = spec.execute(request, progress=progress, checkpoint=checkpoint)
    else:
        result = spec.execute(request, progress=progress, checkpoint=checkpoint)
    wall = time.perf_counter() - started
    result.extra.setdefault("wall_seconds", round(wall, 3))
    if store is not None:
        store.put(key, result, request=request)  # also clears checkpoints
    if out_dir is not None:
        result.save(Path(out_dir))
    return RunOutcome(
        request=request,
        key=key,
        result=result,
        cache_hit=False,
        resumed=resumed,
        wall_seconds=wall,
    )


def run_experiment(
    experiment,
    *,
    scale: float | None = None,
    seed=None,
    workers=_UNSET,  # int | None; sentinel so a passed RunRequest wins
    progress=None,
    out_dir=None,
    engine: str | None = None,
    block_size: int | None = None,
    store=None,
    precision=None,
    **overrides,
) -> ExperimentResult:
    """Run one experiment by id (or :class:`RunRequest`) and optionally save
    CSV/JSON to *out_dir*.

    ``scale``/``seed`` fall back to the experiment's own defaults when
    ``None``; ``overrides`` become part of the request (e.g.
    ``repetitions=50``, ``n=1000``) and must be JSON-canonicalizable.
    ``engine`` selects the repetition engine
    (:data:`repro.experiments.base.ENGINES`); every registered experiment
    declares both engines, and an unsupported request raises the documented
    :class:`~repro.experiments.base.EngineNotSupportedError` from the spec
    itself — never a silent fallback.  ``store`` (``ResultStore`` | path |
    ``True`` for the ``REPRO_STORE`` knob) makes the call
    cache-hit-or-compute with resume checkpoints.  ``precision`` (a
    :class:`~repro.analysis.precision.PrecisionTarget` or its payload)
    turns the repetition budget into a maximum: an adaptive experiment
    under ``engine="ensemble"`` stops as soon as the target CI half-widths
    are met, reporting replications-used in ``result.extra["adaptive"]``.
    """
    request = as_run_request(
        experiment,
        scale=scale,
        seed=seed,
        engine=engine,
        workers=workers,
        block_size=block_size,
        overrides=overrides,
        precision=precision,
    )
    return execute_request(
        request, progress=progress, out_dir=out_dir, store=store
    ).result


def run_all(
    *,
    scale: float | None = None,
    seed=None,
    workers: int | None = 1,
    progress=None,
    out_dir=None,
    only=None,
    engine: str | None = None,
    block_size: int | None = None,
    store=None,
) -> dict[str, ExperimentResult]:
    """Run every registered experiment (or the ids in *only*).

    ``engine`` is applied where the spec declares it — today that is the
    whole registry; a future not-yet-migrated experiment (one whose
    ``engines`` excludes the request) runs on its scalar default instead of
    aborting the whole sweep.  An engine name outside
    :data:`~repro.experiments.base.ENGINES` is an error, never a silent
    scalar fallback.
    """
    from .base import resolve_engine

    if engine is not None:
        engine = resolve_engine(engine)
    wanted = set(only) if only is not None else None
    results: dict[str, ExperimentResult] = {}
    for spec in list_experiments():
        if wanted is not None and spec.experiment_id not in wanted:
            continue
        spec_engine = engine if engine is None or engine in spec.engines else None
        request = RunRequest(
            experiment_id=spec.experiment_id,
            scale=scale,
            seed=seed,
            engine=spec_engine,
            workers=workers,
            block_size=block_size,
        )
        results[spec.experiment_id] = execute_request(
            request, progress=progress, out_dir=out_dir, store=store
        ).result
    return results
