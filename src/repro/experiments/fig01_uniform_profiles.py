"""Figure 1 — load distribution for uniform bins (Section 4.1).

Paper setting: ``n = 10,000`` bins, ``d = 2``, uniform capacities
``c ∈ {1, 2, 3, 4, 8}`` spanning the "interesting range" between
``ln ln n ≈ 2.22`` and ``ln n ≈ 9.21``; ``m = C = c·n`` balls; the plotted
curve is the *sorted* normalised load profile averaged over 10,000 runs.

Expected shape: the ``c = 1`` curve tops out near ``ln ln n / ln 2 ≈ 2.2–3``
while every ``c >= 2`` curve flattens towards 1, with maxima near
``1 + ln ln n / c`` (Observation 2).  The measured per-capacity maxima and
the Observation-2 predictions are recorded in ``extra``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import StreamingProfile
from ..analysis.precision import AdaptiveRecorder
from ..bins.generators import uniform_bins
from ..core.ensemble import simulate_ensemble
from ..core.simulation import simulate
from ..runtime.executor import run_ensemble_reduced, run_repetitions
from ..theory.bounds import loglog_over_logd, observation2_bound
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_N = 10_000
PAPER_CAPACITIES = (1, 2, 3, 4, 8)
PAPER_REPS = 10_000
PAPER_D = 2


def _one_run(seed, *, n: int, capacity: int, d: int) -> np.ndarray:
    bins = uniform_bins(n, capacity)
    res = simulate(bins, d=d, seed=seed)
    return res.loads


def _ensemble_block(seeds, *, n: int, capacity: int, d: int) -> StreamingProfile:
    """Lockstep block: simulate ``len(seeds)`` replications at once and
    return the block's sorted-profile reducer (never the raw ``(R, n)``
    matrix), so workers ship O(n) summaries regardless of block size."""
    bins = uniform_bins(n, capacity)
    res = simulate_ensemble(
        bins, repetitions=len(seeds), d=d, seed=seeds[0], seed_mode="blocked"
    )
    return StreamingProfile(n).update(res.loads)


def _mean_sorted_profile(reps, seed, workers, progress, engine, kwargs,
                         block_size=None, checkpoint=None, until=None):
    """Mean sorted load profile over *reps* repetitions on either engine."""
    if engine == "ensemble":
        reducer = run_ensemble_reduced(
            _ensemble_block, reps, seed=seed, workers=workers,
            kwargs=kwargs, progress=progress,
            block_size=block_size, checkpoint=checkpoint, label="fig01",
            until=until,
        )
        return reducer.profile().mean
    loads = run_repetitions(
        _one_run, reps, seed=seed, workers=workers,
        kwargs=kwargs, progress=progress, label="fig01",
    )
    matrix = np.vstack(loads)
    return (-np.sort(-matrix, axis=1)).mean(axis=0)


@register(
    "fig01",
    "Uniform bins: sorted load profile per capacity",
    "Figure 1",
    "n=10,000 uniform bins, d=2, c in {1,2,3,4,8}, m=C; mean sorted load profile",
    adaptive=True,
)
def run(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = PAPER_N,
    capacities=PAPER_CAPACITIES,
    d: int = PAPER_D,
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
    precision=None,
) -> ExperimentResult:
    """Run the Figure 1 experiment; see module docstring for the setting."""
    engine = resolve_engine(engine)
    recorder = AdaptiveRecorder(precision, engine=engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    block_size = recorder.block_size(reps, block_size)
    series: dict[str, np.ndarray] = {}
    extra_max: dict[str, float] = {}
    extra_pred: dict[str, float] = {}
    for j, c in enumerate(capacities):
        mean_profile = _mean_sorted_profile(
            reps,
            np.random.SeedSequence(seed).spawn(len(capacities))[j],
            workers,
            progress,
            engine,
            {"n": n, "capacity": int(c), "d": d},
            block_size,
            checkpoint,
            recorder.monitor(f"c={c}"),
        )
        series[f"{c}-bins"] = mean_profile
        extra_max[f"c={c}"] = float(mean_profile[0])
        extra_pred[f"c={c}"] = (
            # c = 1 is the standard game (Theorem 3): lnln(n)/ln(d) + O(1);
            # c >= 2 follows Section 4.1's "close to 1 + lnln(n)/c".
            loglog_over_logd(n, d) + 1.0 if c == 1 else observation2_bound(c * n, n, c)
        )
    extra = {
        "mean_max_load": extra_max,
        "prediction_obs2": extra_pred,
        "observation2_note": "prediction is 1 + lnln(n)/c for c>=2; lnln(n)/ln(d)+1 for c=1",
    }
    recorder.annotate(extra, budget_per_run=reps)
    return ExperimentResult(
        experiment_id="fig01",
        title="Uniform bins: mean sorted load profile",
        x_name="bin_rank",
        x_values=np.arange(n),
        series=series,
        parameters={
            "n": n,
            "d": d,
            "capacities": list(capacities),
            "repetitions": reps,
            "seed": seed,
            "engine": engine,
        },
        extra=extra,
    )
