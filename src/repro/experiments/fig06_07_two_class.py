"""Figures 6–7 — two-class arrays, sweep of the large-bin fraction (Sec 4.2).

Paper setting: ``n = 1,000`` bins mixing capacity-1 and capacity-10 bins;
the fraction of large bins sweeps 0%..100%; ``m = C``; Figure 6 plots the
mean maximum load, Figure 7 the percentage of runs in which a *small* bin is
among the maximally loaded (out of 1,000 runs per point in the paper).

Expected shape (paper's discussion): max load starts near 3 (pure small
bins ≈ standard game), drops quickly to ≈2, sits on a plateau from roughly
10% to 30%, then falls towards 1.2 as the large bins take over; the
location-of-max curve stays near 100% until the pull of the large bins wins
(crossing 50% around 45% large bins) and collapses to 0 by ≈90%.
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import ReducerBundle, StreamingScalar
from ..analysis.stats import max_load_location_by_class, max_load_location_by_class_matrix
from ..bins.generators import two_class_mix_bins
from ..core.ensemble import simulate_ensemble
from ..core.simulation import simulate
from ..runtime.executor import run_ensemble_reduced, run_repetitions
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_N = 1_000
PAPER_SMALL_CAP = 1
PAPER_LARGE_CAP = 10
PAPER_REPS_FIG6 = 10_000
PAPER_REPS_FIG7 = 1_000
PAPER_D = 2
#: Sweep grid for the percentage of large bins.
PAPER_STEP_PCT = 2


def _one_run(seed, *, n: int, n_large: int, small_cap: int, large_cap: int, d: int):
    bins = two_class_mix_bins(n, n_large, small_cap, large_cap)
    res = simulate(bins, d=d, seed=seed)
    location = max_load_location_by_class(res.counts, bins.capacities)
    small_has_max = location.get(small_cap, False)
    return res.max_load, small_has_max


def _ensemble_block(seeds, *, n: int, n_large: int, small_cap: int, large_cap: int, d: int):
    """Lockstep block: the two-class array is deterministic, so the whole
    block advances through one ``(R, n)`` counts array and only the reduced
    max-load / where-the-maximum-sits moments leave the worker."""
    bins = two_class_mix_bins(n, n_large, small_cap, large_cap)
    res = simulate_ensemble(
        bins, repetitions=len(seeds), d=d, seed=seeds[0], seed_mode="blocked"
    )
    location = max_load_location_by_class_matrix(res.counts, bins.capacities)
    flags = location.get(small_cap, np.zeros(len(seeds), dtype=bool))
    return ReducerBundle(
        max_load=StreamingScalar().update(res.max_loads),
        small_has_max=StreamingScalar().update(flags.astype(np.float64)),
    )


def _sweep(scale, seed, workers, progress, n, small_cap, large_cap, d,
           step_pct, repetitions, paper_reps, engine, block_size, checkpoint,
           label):
    engine = resolve_engine(engine)
    reps = repetitions if repetitions is not None else scaled_reps(paper_reps, scale)
    percentages = np.arange(0, 100 + step_pct, step_pct)
    percentages = percentages[percentages <= 100]
    seeds = np.random.SeedSequence(seed).spawn(len(percentages))
    mean_max = np.empty(len(percentages))
    frac_small = np.empty(len(percentages))
    for i, pct in enumerate(percentages):
        n_large = int(round(n * pct / 100.0))
        kwargs = {
            "n": n,
            "n_large": n_large,
            "small_cap": small_cap,
            "large_cap": large_cap,
            "d": d,
        }
        if engine == "ensemble":
            bundle = run_ensemble_reduced(
                _ensemble_block, reps, seed=seeds[i], workers=workers,
                kwargs=kwargs, progress=progress,
                block_size=block_size, checkpoint=checkpoint, label=label,
            )
            mean_max[i] = bundle["max_load"].mean
            small_mean = bundle["small_has_max"].mean
        else:
            outs = run_repetitions(
                _one_run, reps, seed=seeds[i], workers=workers,
                kwargs=kwargs, progress=progress, label=label,
            )
            maxima = np.asarray([o[0] for o in outs])
            flags = np.asarray([o[1] for o in outs], dtype=bool)
            mean_max[i] = maxima.mean()
            small_mean = flags.mean()
        # With zero large bins the max is trivially in a small bin; with
        # zero small bins the class is absent and the fraction is zero.
        frac_small[i] = small_mean if n_large < n else 0.0
    return percentages, mean_max, frac_small, reps, engine


@register(
    "fig06",
    "Two-class bins (1 and 10): max load vs fraction of large bins",
    "Figure 6",
    "n=1000 bins of capacity 1 and 10, m=C; mean max load vs % of large bins",
)
def run_fig06(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = PAPER_N,
    small_cap: int = PAPER_SMALL_CAP,
    large_cap: int = PAPER_LARGE_CAP,
    d: int = PAPER_D,
    step_pct: int = PAPER_STEP_PCT,
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
) -> ExperimentResult:
    """Figure 6: mean maximum load over the large-bin-fraction sweep."""
    pct, mean_max, _, reps, engine = _sweep(
        scale, seed, workers, progress, n, small_cap, large_cap, d,
        step_pct, repetitions, PAPER_REPS_FIG6, engine, block_size, checkpoint,
        "fig06",
    )
    return ExperimentResult(
        experiment_id="fig06",
        title="Max load vs percentage of large bins (caps 1 and 10)",
        x_name="percentage_large_bins",
        x_values=pct,
        series={"max_load": mean_max},
        parameters={
            "n": n, "d": d, "small_cap": small_cap, "large_cap": large_cap,
            "step_pct": step_pct, "repetitions": reps, "seed": seed,
            "engine": engine,
        },
        extra={
            "start": float(mean_max[0]),
            "end": float(mean_max[-1]),
            "expected_shape": "monotone-ish decrease ~3 -> ~1.2 with a plateau near 10-30%",
        },
    )


@register(
    "fig07",
    "Two-class bins (1 and 10): where the maximum sits",
    "Figure 7",
    "n=1000 bins of capacity 1 and 10, m=C; % of runs where a small bin has max load",
)
def run_fig07(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = PAPER_N,
    small_cap: int = PAPER_SMALL_CAP,
    large_cap: int = PAPER_LARGE_CAP,
    d: int = PAPER_D,
    step_pct: int = PAPER_STEP_PCT,
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
) -> ExperimentResult:
    """Figure 7: fraction of runs whose maximum sits in a small bin."""
    pct, _, frac_small, reps, engine = _sweep(
        scale, seed, workers, progress, n, small_cap, large_cap, d,
        step_pct, repetitions, PAPER_REPS_FIG7, engine, block_size, checkpoint,
        "fig07",
    )
    return ExperimentResult(
        experiment_id="fig07",
        title="% of runs where a small bin is maximally loaded",
        x_name="percentage_large_bins",
        x_values=pct,
        series={"pct_small_has_max": 100.0 * frac_small},
        parameters={
            "n": n, "d": d, "small_cap": small_cap, "large_cap": large_cap,
            "step_pct": step_pct, "repetitions": reps, "seed": seed,
            "engine": engine,
        },
        extra={
            "expected_shape": "stays near 100% for small fractions, crosses 50% near ~45%, ~0% by ~90%",
        },
    )
