"""Related-work and extension experiments.

* ``rw_ring`` — Byers et al. [7, 9], the result the paper generalises:
  on a consistent-hashing ring with log(n)-skewed arcs, d-point allocation
  keeps the maximum request count at the two-choice level despite the
  non-uniform probabilities.  Series: max requests per peer vs number of
  probes d, for plain (unit-peer) and capacity-aware (this paper's)
  accounting.
* ``abl_weighted`` — the weighted-balls extension: how the maximum load
  responds as ball-size variability grows (coefficient of variation sweep,
  lognormal sizes, fixed total mass ≈ C).
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import StreamingScalar
from ..bins.generators import two_class_bins
from ..core.weighted import simulate_weighted, simulate_weighted_ensemble
from ..p2p.ring import ConsistentHashRing
from ..p2p.workload import allocate_requests, allocate_requests_ensemble
from ..runtime.executor import (
    block_parameter_rng,
    run_ensemble_reduced,
    run_repetitions,
    shared_param_block_size,
)
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_REPS = 10_000


def _ring_task(seed, *, n_peers, m, d, capacity_aware):
    rng = np.random.default_rng(seed)
    ring = ConsistentHashRing.random(n_peers, seed=rng)
    res = allocate_requests(ring, m, d=d, capacity_aware=capacity_aware, seed=rng)
    if capacity_aware:
        # normalise by the average load m / total-capacity so both series
        # read as "times worse than perfect"
        return res.max_load / (m / res.capacities.sum())
    return res.max_requests / (m / n_peers)  # normalised to the average


def _ring_block(seeds, *, n_peers, m, d, capacity_aware):
    """Lockstep block with a shared-ring-per-block treatment: the block draws
    one random ring from its parameter generator and every replication sends
    its own request stream onto that ring (blocks independent, estimator
    unbiased — the fig16 shared-params argument)."""
    rng = block_parameter_rng(seeds)
    ring = ConsistentHashRing.random(n_peers, seed=rng)
    res = allocate_requests_ensemble(
        ring, m, repetitions=len(seeds), d=d, capacity_aware=capacity_aware,
        seed=rng, seed_mode="blocked",
    )
    if capacity_aware:
        values = res.max_loads / (m / res.capacities.sum())
    else:
        values = res.max_requests / (m / n_peers)
    return StreamingScalar().update(values)


@register(
    "rw_ring",
    "Byers et al.: d-point allocation on a consistent-hashing ring",
    "Related work [7, 9]",
    "random ring, m = 20*n requests; normalised max requests vs d, plain and capacity-aware",
)
def run_rw_ring(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n_peers: int = 200,
    requests_per_peer: int = 20,
    d_values=(1, 2, 3),
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
) -> ExperimentResult:
    """Max request concentration on a ring as the probe count grows."""
    engine = resolve_engine(engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    m = n_peers * requests_per_peer
    seeds = np.random.SeedSequence(seed).spawn(2)
    series = {}
    for aware, s, name in (
        (False, seeds[0], "plain peers (max/avg requests)"),
        (True, seeds[1], "capacity-aware (max/avg load)"),
    ):
        d_seeds = s.spawn(len(d_values))
        curve = []
        for d, ds in zip(d_values, d_seeds):
            kwargs = {"n_peers": n_peers, "m": m, "d": int(d),
                      "capacity_aware": aware}
            if engine == "ensemble":
                # Small blocks (unless the request pins its own width): each
                # block shares one random ring, so the ring randomness needs
                # several independent draws.
                reducer = run_ensemble_reduced(
                    _ring_block, reps, seed=ds, workers=workers,
                    kwargs=kwargs, progress=progress,
                    block_size=shared_param_block_size(reps, block_size),
                    checkpoint=checkpoint, label="rw_ring",
                )
                curve.append(float(reducer.mean))
            else:
                outs = run_repetitions(
                    _ring_task, reps, seed=ds, workers=workers,
                    kwargs=kwargs, progress=progress, label="rw_ring",
                )
                curve.append(float(np.mean(outs)))
        series[name] = np.asarray(curve)
    return ExperimentResult(
        experiment_id="rw_ring",
        title="d-point allocation on a consistent-hashing ring",
        x_name="d",
        x_values=np.asarray(d_values, dtype=np.float64),
        series=series,
        parameters={"n_peers": n_peers, "requests_per_peer": requests_per_peer,
                    "repetitions": reps, "seed": seed, "engine": engine},
        extra={
            "expected_shape": "steep drop from d=1 to d=2 in both accountings "
                              "(the log n arc skew collapses to lnln n)",
        },
    )


def _weighted_task(seed, *, n, sigma):
    rng = np.random.default_rng(seed)
    bins = two_class_bins(n // 2, n - n // 2, 1, 8)
    C = bins.total_capacity
    # lognormal sizes with mean 1 (mu = -sigma^2/2) so total mass ~ C
    sizes = rng.lognormal(-0.5 * sigma * sigma, sigma, size=C) if sigma > 0 else np.ones(C)
    res = simulate_weighted(bins, sizes, seed=rng)
    return res.max_load / res.average_load


def _weighted_block(seeds, *, n, sigma):
    """Lockstep block with a shared-sizes-per-block treatment: the block
    draws one lognormal ball-size multiset from its parameter generator and
    every replication allocates that same arrival sequence with its own
    choice stream (blocks independent, estimator unbiased)."""
    rng = block_parameter_rng(seeds)
    bins = two_class_bins(n // 2, n - n // 2, 1, 8)
    C = bins.total_capacity
    sizes = rng.lognormal(-0.5 * sigma * sigma, sigma, size=C) if sigma > 0 else np.ones(C)
    res = simulate_weighted_ensemble(
        bins, sizes, repetitions=len(seeds), seed=rng, seed_mode="blocked"
    )
    return StreamingScalar().update(res.max_loads / res.average_load)


@register(
    "abl_weighted",
    "Extension: weighted balls, max/avg load vs size variability",
    "Extension (weighted balls)",
    "caps 1 and 8, lognormal ball sizes of mean 1; normalised max load vs size CV",
)
def run_abl_weighted(
    scale: float = 0.01,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = 200,
    sigmas=(0.0, 0.25, 0.5, 1.0, 1.5),
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
) -> ExperimentResult:
    """Normalised max load as ball-size variability grows."""
    engine = resolve_engine(engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    seeds = np.random.SeedSequence(seed).spawn(len(sigmas))
    curve = []
    for sigma, s in zip(sigmas, seeds):
        kwargs = {"n": n, "sigma": float(sigma)}
        if engine == "ensemble":
            # Small blocks (unless the request pins its own width): each
            # block shares one ball-size multiset, so the size randomness
            # needs several independent draws.
            reducer = run_ensemble_reduced(
                _weighted_block, reps, seed=s, workers=workers,
                kwargs=kwargs, progress=progress,
                block_size=shared_param_block_size(reps, block_size),
                checkpoint=checkpoint, label="abl_weighted",
            )
            curve.append(float(reducer.mean))
        else:
            outs = run_repetitions(
                _weighted_task, reps, seed=s, workers=workers,
                kwargs=kwargs, progress=progress, label="abl_weighted",
            )
            curve.append(float(np.mean(outs)))
    cvs = [float(np.sqrt(np.exp(s * s) - 1.0)) if s > 0 else 0.0 for s in sigmas]
    return ExperimentResult(
        experiment_id="abl_weighted",
        title="Weighted balls: normalised max load vs size variability",
        x_name="size_coefficient_of_variation",
        x_values=np.asarray(cvs),
        series={"max_over_avg_load": np.asarray(curve)},
        parameters={"n": n, "sigmas": [float(s) for s in sigmas],
                    "repetitions": reps, "seed": seed, "engine": engine},
        extra={
            "expected_shape": "unit sizes recover the paper's constant; the "
                              "normalised max grows with the size CV and is "
                              "unbounded for heavy tails (a single huge ball "
                              "dominates its bin) — the unit-ball guarantee "
                              "does not transfer to arbitrary weights",
        },
    )
