"""Declarative run descriptions: :class:`RunRequest` and its cache key.

A :class:`RunRequest` is the frozen, canonical description of one
experiment run — experiment id, scale, seed, engine, workers, block size,
and the experiment-specific overrides — and is the unit the whole run
pipeline operates on:

* **Plan** — the CLI / sweep front end / scripts build requests instead of
  threading ad-hoc ``**kwargs`` through the stack;
* **Store** — :meth:`RunRequest.cache_key` addresses the content-addressed
  result store (:mod:`repro.io.store`);
* **Resume** — block checkpoints of an interrupted run are namespaced under
  the same key.

Cache-key semantics
-------------------
The key is the sha256 of a canonical JSON encoding of everything that can
change the numbers:

* ``experiment_id`` and the spec's ``version`` (bump
  :func:`repro.experiments.base.register`'s ``version`` whenever an
  experiment's semantics change — the same events that move golden tests);
* ``scale``, ``seed``, and the canonicalized ``overrides``;
* the *effective* engine (``None`` normalises to ``"scalar"``, the
  registry-wide default, so an unset engine and an explicit scalar request
  hit the same entry);
* ``block_size`` — but only under the ensemble engine, where blocked-mode
  results genuinely depend on it; on the scalar path it is dropped from the
  key because it cannot affect results.

``workers`` is deliberately **excluded**: the executor's seed contract
(:mod:`repro.runtime.executor`) guarantees pool size never changes any
result, so runs that differ only in parallelism share a cache entry.

``precision`` (an adaptive early-stop target,
:class:`repro.analysis.precision.PrecisionTarget`) **is** part of the key
whenever set: the target decides where the block stream stops, so two
runs differing only in precision generally hold different numbers.  The
field is canonicalized (sorted payload pairs) and joins the key payload
only when present, so every pre-adaptive cache entry keeps its address.

``None`` fields mean "use the experiment's own default".  Requests are
canonical *descriptions*, not semantic equalities: an explicit
``seed=20260612`` and the unset default produce different keys even when
the experiment's default seed happens to match.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

import numpy as np

from ..analysis.precision import PrecisionTarget

__all__ = ["RunRequest", "canonical_overrides", "canonical_precision", "OverrideError"]

#: Engine the registry defaults to when a request leaves ``engine`` unset.
DEFAULT_ENGINE = "scalar"


class OverrideError(TypeError):
    """An override value cannot participate in a canonical cache key."""


def _canonical_value(name: str, value):
    """Convert one override value into canonical JSON-encodable form.

    NumPy scalars/arrays collapse to Python numbers / lists, tuples and
    sets to lists (sets sorted), dict keys to strings.  Anything that would
    not survive a JSON round-trip raises :class:`OverrideError` — a request
    must be serialisable to be addressable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_canonical_value(name, v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_canonical_value(name, v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical_value(name, v) for v in value)
    if isinstance(value, dict):
        return {str(k): _canonical_value(name, v) for k, v in value.items()}
    raise OverrideError(
        f"override {name}={value!r} ({type(value).__name__}) is not "
        f"JSON-canonicalizable and cannot be part of a cache key"
    )


def canonical_overrides(overrides) -> tuple:
    """Canonicalize an override mapping into a sorted tuple of pairs."""
    if overrides is None:
        return ()
    items = overrides.items() if isinstance(overrides, dict) else overrides
    out = []
    for name, value in items:
        out.append((str(name), _canonical_value(str(name), value)))
    out.sort(key=lambda kv: kv[0])
    return tuple(out)


def canonical_precision(value) -> tuple:
    """Canonicalize a precision target into sorted payload pairs.

    Accepts a :class:`~repro.analysis.precision.PrecisionTarget`, its
    payload dict, or an iterable of pairs; validation happens by round-
    tripping through the target class, so an unrepresentable target can
    never reach a cache key.
    """
    if isinstance(value, PrecisionTarget):
        target = value
    elif isinstance(value, dict):
        target = PrecisionTarget.from_payload(value)
    else:
        target = PrecisionTarget.from_payload(dict(value))
    return tuple(sorted(target.to_payload().items()))


@dataclass(frozen=True)
class RunRequest:
    """Frozen description of one experiment run (see module docstring)."""

    experiment_id: str
    scale: float | None = None
    seed: int | None = None
    engine: str | None = None
    workers: int | None = 1
    block_size: int | None = None
    overrides: tuple = field(default=())
    precision: tuple | None = None

    def __post_init__(self):
        # Accept dicts / iterables of pairs and normalise them; the frozen
        # dataclass requires the back-door setattr.
        object.__setattr__(self, "overrides", canonical_overrides(self.overrides))
        if self.scale is not None:
            object.__setattr__(self, "scale", float(self.scale))
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        if self.block_size is not None:
            object.__setattr__(self, "block_size", int(self.block_size))
        if self.precision is not None:
            object.__setattr__(self, "precision", canonical_precision(self.precision))

    # -- derived views ---------------------------------------------------

    def overrides_dict(self) -> dict:
        """The canonical overrides as a plain dict (copy)."""
        return {k: v for k, v in self.overrides}

    def effective_engine(self) -> str:
        """The engine the run will actually use (``None`` → scalar)."""
        return self.engine if self.engine is not None else DEFAULT_ENGINE

    def with_engine(self, engine: str | None) -> "RunRequest":
        """A copy of this request targeting a different engine."""
        return replace(self, engine=engine)

    def precision_target(self) -> PrecisionTarget | None:
        """The adaptive early-stop target this request asks for (or None)."""
        if self.precision is None:
            return None
        return PrecisionTarget.from_payload(dict(self.precision))

    # -- cache key -------------------------------------------------------

    def key_payload(self, *, version: int) -> dict:
        """The canonical (JSON-encodable) payload the cache key hashes."""
        engine = self.effective_engine()
        payload = {
            "experiment_id": self.experiment_id,
            "version": int(version),
            "scale": self.scale,
            "seed": self.seed,
            "engine": engine,
            # block_size only matters where blocked-mode streams exist.
            "block_size": self.block_size if engine == "ensemble" else None,
            "overrides": {k: v for k, v in self.overrides},
        }
        if self.precision is not None:
            # Joined only when set, so pre-adaptive entries keep their keys.
            payload["precision"] = {k: v for k, v in self.precision}
        return payload

    def cache_key(self, *, version: int) -> str:
        """Stable content address: sha256 over the canonical JSON payload."""
        blob = json.dumps(
            self.key_payload(version=version),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- persistence -----------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-encodable round-trippable form (stored next to results)."""
        return {
            "experiment_id": self.experiment_id,
            "scale": self.scale,
            "seed": self.seed,
            "engine": self.engine,
            "workers": self.workers,
            "block_size": self.block_size,
            "overrides": {k: v for k, v in self.overrides},
            "precision": None if self.precision is None else dict(self.precision),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RunRequest":
        """Inverse of :meth:`to_payload`."""
        return cls(
            experiment_id=payload["experiment_id"],
            scale=payload.get("scale"),
            seed=payload.get("seed"),
            engine=payload.get("engine"),
            workers=payload.get("workers", 1),
            block_size=payload.get("block_size"),
            overrides=payload.get("overrides") or (),
            precision=payload.get("precision"),
        )
