"""Figures 8–9 — randomised bin sizes, sweep of total capacity (Section 4.2).

Paper setting: each bin's capacity is ``1 + X`` with
``X ~ Bin(7, (c-1)/7)``, so a target mean capacity ``c ∈ [1, 8]`` gives
expected total capacity ``c·n``; ``m = C`` (the realised total).  Figure 8
(``n = 10,000``) plots the mean maximum load against the total capacity;
Figure 9 (``n = 1,000``) plots, per capacity class ``x ∈ {1, 2, 4, 6}``, the
percentage of runs in which a size-``x`` bin is among the maximally loaded.

Expected shape: Figure 8 falls rapidly (≈3.1 at ``C = n`` down to ≈1.3 at
``C = 8n``) with small residual plateaus; Figure 9 shows the maximum
migrating from size-1 bins to size-2 bins (around ``C ≈ 2,500`` for
``n = 1,000``) and onward through the classes as capacity grows.
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import ReducerBundle, StreamingScalar
from ..analysis.stats import max_load_location_by_class, max_load_location_by_class_matrix
from ..bins.generators import binomial_random_bins
from ..core.ensemble import simulate_ensemble
from ..core.simulation import simulate
from ..runtime.executor import (
    block_parameter_rng,
    run_ensemble_reduced,
    run_repetitions,
    shared_param_block_size,
)
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_N_FIG8 = 10_000
PAPER_N_FIG9 = 1_000
PAPER_REPS = 10_000
PAPER_D = 2
PAPER_MEAN_CAP_GRID = tuple(np.round(np.arange(1.0, 8.0 + 0.25, 0.25), 4))
PAPER_TRACKED_CLASSES = (1, 2, 4, 6)


def _one_run(seed, *, n: int, mean_cap: float, d: int):
    rng = np.random.default_rng(seed)
    bins = binomial_random_bins(n, mean_cap, rng)
    res = simulate(bins, d=d, seed=rng)
    location = max_load_location_by_class(res.counts, bins.capacities)
    return res.max_load, bins.total_capacity, location


def _ensemble_block(seeds, *, n: int, mean_cap: float, d: int):
    """Lockstep block with the shared-caps-per-block treatment (see fig16):
    the block draws one capacity vector from its parameter generator and all
    of its replications rethrow ``m = C`` balls into that array.  Blocks are
    independent, so the estimator over replications stays unbiased; the
    runner keeps blocks small so the capacity randomness is averaged over
    several independent draws."""
    rng = block_parameter_rng(seeds)
    bins = binomial_random_bins(n, mean_cap, rng)
    res = simulate_ensemble(
        bins, repetitions=len(seeds), d=d, seed=rng, seed_mode="blocked"
    )
    location = max_load_location_by_class_matrix(res.counts, bins.capacities)
    R = len(seeds)
    reducers = {
        "max_load": StreamingScalar().update(res.max_loads),
        "total_capacity": StreamingScalar().update(
            np.full(R, float(bins.total_capacity))
        ),
    }
    for x in PAPER_TRACKED_CLASSES:
        flags = location.get(int(x), np.zeros(R, dtype=bool))
        reducers[f"class_{x}"] = StreamingScalar().update(flags.astype(np.float64))
    return ReducerBundle(**reducers)


def _sweep(scale, seed, workers, progress, n, d, grid, repetitions, engine,
           block_size, checkpoint, label):
    engine = resolve_engine(engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    seeds = np.random.SeedSequence(seed).spawn(len(grid))
    mean_max = np.empty(len(grid))
    mean_total = np.empty(len(grid))
    class_fracs = {x: np.zeros(len(grid)) for x in PAPER_TRACKED_CLASSES}
    for i, c in enumerate(grid):
        kwargs = {"n": n, "mean_cap": float(c), "d": d}
        if engine == "ensemble":
            # Small blocks (unless the request pins its own width) so the
            # capacity distribution is averaged over at least ~8 independent
            # draws (each block shares one capacity vector drawn from the
            # block's parameter generator).
            bundle = run_ensemble_reduced(
                _ensemble_block, reps, seed=seeds[i], workers=workers,
                kwargs=kwargs, progress=progress,
                block_size=shared_param_block_size(reps, block_size),
                checkpoint=checkpoint, label=label,
            )
            mean_max[i] = bundle["max_load"].mean
            mean_total[i] = bundle["total_capacity"].mean
            for x in PAPER_TRACKED_CLASSES:
                class_fracs[x][i] = bundle[f"class_{x}"].mean
        else:
            outs = run_repetitions(
                _one_run,
                reps,
                seed=seeds[i],
                workers=workers,
                kwargs=kwargs,
                progress=progress,
                label=label,
            )
            mean_max[i] = np.mean([o[0] for o in outs])
            mean_total[i] = np.mean([o[1] for o in outs])
            for x in PAPER_TRACKED_CLASSES:
                class_fracs[x][i] = np.mean([o[2].get(x, False) for o in outs])
    return mean_total, mean_max, class_fracs, reps, engine


@register(
    "fig08",
    "Randomised bin sizes: max load vs total capacity",
    "Figure 8",
    "n=10,000 bins, capacity 1+Bin(7,(c-1)/7), m=C; mean max load vs total capacity",
)
def run_fig08(
    scale: float = 0.002,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = PAPER_N_FIG8,
    d: int = PAPER_D,
    mean_cap_grid=PAPER_MEAN_CAP_GRID,
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
) -> ExperimentResult:
    """Figure 8: mean maximum load as total capacity grows."""
    totals, mean_max, _, reps, engine = _sweep(
        scale, seed, workers, progress, n, d, mean_cap_grid, repetitions, engine,
        block_size, checkpoint, "fig08",
    )
    return ExperimentResult(
        experiment_id="fig08",
        title="Randomised bin sizes: max load vs total capacity",
        x_name="total_capacity",
        x_values=totals,
        series={"max_load": mean_max},
        parameters={
            "n": n, "d": d, "mean_cap_grid": [float(c) for c in mean_cap_grid],
            "repetitions": reps, "seed": seed, "engine": engine,
        },
        extra={
            "start": float(mean_max[0]),
            "end": float(mean_max[-1]),
            "expected_shape": "rapid decrease ~3.1 -> ~1.3 as capacity grows",
        },
    )


@register(
    "fig09",
    "Randomised bin sizes: which class holds the maximum",
    "Figure 9",
    "n=1,000 bins, capacity 1+Bin(7,(c-1)/7), m=C; % of runs with max load in size-x bins",
)
def run_fig09(
    scale: float = 0.002,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = PAPER_N_FIG9,
    d: int = PAPER_D,
    mean_cap_grid=PAPER_MEAN_CAP_GRID,
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
) -> ExperimentResult:
    """Figure 9: location of the maximally loaded bin, per size class."""
    totals, _, class_fracs, reps, engine = _sweep(
        scale, seed, workers, progress, n, d, mean_cap_grid, repetitions, engine,
        block_size, checkpoint, "fig09",
    )
    series = {
        f"max_in_size_{x}": 100.0 * fr for x, fr in class_fracs.items()
    }
    return ExperimentResult(
        experiment_id="fig09",
        title="% of runs in which a size-x bin is maximally loaded",
        x_name="total_capacity",
        x_values=totals,
        series=series,
        parameters={
            "n": n, "d": d, "mean_cap_grid": [float(c) for c in mean_cap_grid],
            "tracked_classes": list(PAPER_TRACKED_CLASSES),
            "repetitions": reps, "seed": seed, "engine": engine,
        },
        extra={
            "expected_shape": "max migrates from size-1 bins to size-2 around C~2.5n, then to larger classes",
        },
    )
