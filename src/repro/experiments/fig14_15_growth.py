"""Figures 14–15 — dynamically growing systems (Section 4.3).

Paper setting: a storage system grows from 2 to 1,000 disks in batches of
20; generation ``i`` disks have capacity ``2 + i·a`` (linear, Figure 14,
``a ∈ {1, 2, 4, 6}``) or ``2·b^i`` (exponential, Figure 15,
``b ∈ {1.05, 1.1, 1.2, 1.4}``; the text also mentions 1.005).  At every
state the allocation restarts from scratch with ``m = C`` balls; the
baseline keeps all capacities at 2.  Plot: mean maximum load vs number of
bins.

Expected shape: every growth model's curve *decreases* with system size,
unlike the flat baseline; exponential growth starts slower but wins once
generation capacities are significant.

Substitution note (documented in DESIGN.md): with ``b = 1.4`` the paper-
scale final state has total capacity ≈ 2.6·10⁹ — the per-state ``m = C``
runs are truncated once ``C`` exceeds ``ball_budget`` (the series is
NaN-padded beyond that point).  At ``ball_budget=None`` the sweep is exact.
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import StreamingScalar
from ..bins.growth import BaselineGrowthModel, ExponentialGrowthModel, GrowthModel, LinearGrowthModel
from ..core.ensemble import simulate_ensemble
from ..core.simulation import simulate
from ..runtime.executor import run_ensemble_reduced, run_repetitions
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_MAX_BINS = 1_000
PAPER_LINEAR_OFFSETS = (1, 2, 4, 6)
PAPER_EXP_FACTORS = (1.05, 1.1, 1.2, 1.4)
PAPER_REPS = 10_000
PAPER_D = 2
#: Default per-run ball cap; generous for linear growth, truncates only the
#: extreme exponential tails.
DEFAULT_BALL_BUDGET = 2_000_000


def _one_state_run(seed, *, capacities, d: int) -> float:
    from ..bins.arrays import BinArray

    bins = BinArray(np.asarray(capacities, dtype=np.int64))
    res = simulate(bins, d=d, seed=seed)
    return res.max_load


def _ensemble_state_block(seeds, *, capacities, d: int) -> StreamingScalar:
    """Lockstep block for one growth state: the state's capacity vector is
    deterministic, so the block rethrows ``m = C`` balls into it in lockstep
    and ships only the max-load moments."""
    from ..bins.arrays import BinArray

    bins = BinArray(np.asarray(capacities, dtype=np.int64))
    res = simulate_ensemble(
        bins, repetitions=len(seeds), d=d, seed=seeds[0], seed_mode="blocked"
    )
    return StreamingScalar().update(res.max_loads)


def _sweep_model(model: GrowthModel, max_bins, reps, seed, workers, progress, d,
                 ball_budget, engine, block_size, checkpoint, label):
    xs: list[int] = []
    ys: list[float] = []
    states = list(model.states(max_bins))
    parent = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    seeds = parent.spawn(len(states))
    for i, state in enumerate(states):
        xs.append(state.n)
        if ball_budget is not None and state.total_capacity > ball_budget:
            ys.append(np.nan)
            continue
        kwargs = {"capacities": state.capacities.tolist(), "d": d}
        if engine == "ensemble":
            reducer = run_ensemble_reduced(
                _ensemble_state_block, reps, seed=seeds[i], workers=workers,
                kwargs=kwargs, progress=progress,
                block_size=block_size, checkpoint=checkpoint, label=label,
            )
            ys.append(reducer.mean)
        else:
            outs = run_repetitions(
                _one_state_run, reps, seed=seeds[i], workers=workers,
                kwargs=kwargs, progress=progress, label=label,
            )
            ys.append(float(np.mean(outs)))
    return np.asarray(xs), np.asarray(ys)


def _run_growth(figure_id, title, models, scale, seed, workers, progress,
                max_bins, d, repetitions, ball_budget, engine, block_size,
                checkpoint):
    engine = resolve_engine(engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    master = np.random.SeedSequence(seed).spawn(len(models))
    x_ref: np.ndarray | None = None
    series: dict[str, np.ndarray] = {}
    truncated: dict[str, int] = {}
    for (name, model), s in zip(models, master):
        xs, ys = _sweep_model(model, max_bins, reps, s, workers, progress, d,
                              ball_budget, engine, block_size, checkpoint,
                              figure_id)
        if x_ref is None:
            x_ref = xs
        elif not np.array_equal(x_ref, xs):
            raise RuntimeError("growth models produced misaligned state grids")
        series[name] = ys
        truncated[name] = int(np.isnan(ys).sum())
    assert x_ref is not None
    return ExperimentResult(
        experiment_id=figure_id,
        title=title,
        x_name="number_of_bins",
        x_values=x_ref,
        series=series,
        parameters={
            "max_bins": max_bins, "d": d, "repetitions": reps, "seed": seed,
            "ball_budget": ball_budget, "engine": engine,
        },
        extra={
            "states_truncated_by_budget": truncated,
            "expected_shape": "growth curves decrease with system size; baseline stays flat",
        },
    )


@register(
    "fig14",
    "Linear capacity growth between generations",
    "Figure 14",
    "2->1000 disks in batches of 20; generation capacity 2+i*a, a in {1,2,4,6}; m=C; mean max load",
)
def run_fig14(
    scale: float = 0.001,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    max_bins: int = PAPER_MAX_BINS,
    offsets=PAPER_LINEAR_OFFSETS,
    d: int = PAPER_D,
    repetitions: int | None = None,
    ball_budget: int | None = DEFAULT_BALL_BUDGET,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
) -> ExperimentResult:
    """Figure 14: max load vs system size under linear generation growth."""
    models = [("base (all capacities = 2)", BaselineGrowthModel())]
    models += [(f"lin a={a}", LinearGrowthModel(offset=int(a))) for a in offsets]
    return _run_growth(
        "fig14", "Linear growth between generations", models,
        scale, seed, workers, progress, max_bins, d, repetitions, ball_budget,
        engine, block_size, checkpoint,
    )


@register(
    "fig15",
    "Exponential capacity growth between generations",
    "Figure 15",
    "2->1000 disks in batches of 20; generation capacity 2*b^i, b in {1.05,1.1,1.2,1.4}; m=C; mean max load",
)
def run_fig15(
    scale: float = 0.001,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    max_bins: int = PAPER_MAX_BINS,
    factors=PAPER_EXP_FACTORS,
    d: int = PAPER_D,
    repetitions: int | None = None,
    ball_budget: int | None = DEFAULT_BALL_BUDGET,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
) -> ExperimentResult:
    """Figure 15: max load vs system size under exponential generation growth."""
    models = [("base (all capacities = 2)", BaselineGrowthModel())]
    models += [(f"exp b={b}", ExponentialGrowthModel(factor=float(b))) for b in factors]
    return _run_growth(
        "fig15", "Exponential growth between generations", models,
        scale, seed, workers, progress, max_bins, d, repetitions, ball_budget,
        engine, block_size, checkpoint,
    )
