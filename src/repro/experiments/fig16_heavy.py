"""Figure 16 — the heavily loaded case with random capacities (Section 4.4).

Paper setting: ``n = 10,000`` bins; for each target capacity
``CAP ∈ {1n, 2n, 5n, 10n}`` the individual capacities are drawn with the
Section-4.2 binomial construction so the expected total is CAP; then
``100 × CAP`` balls are thrown and after every ``i·CAP`` balls
(``i = 1..100``) the deviation of the current maximum load from the current
average load is recorded.

Expected shape: "a bundle of parallel lines" — the deviation does not grow
with the number of balls, and larger CAP puts the line closer to zero.
"""

from __future__ import annotations

import numpy as np

from ..analysis.aggregate import StreamingProfile
from ..bins.generators import binomial_random_bins
from ..core.ensemble import simulate_ensemble
from ..core.simulation import simulate
from ..runtime.executor import (
    block_parameter_rng,
    run_ensemble_reduced,
    run_repetitions,
    shared_param_block_size,
)
from .base import ExperimentResult, register, resolve_engine, scaled_reps

PAPER_N = 10_000
PAPER_CAP_MULTIPLIERS = (1, 2, 5, 10)
PAPER_ROUNDS = 100
PAPER_REPS = 100
PAPER_D = 2


def _draw_bins(rng, n: int, cap_multiplier: int):
    """Section-4.2 random capacities with expected total ``cap_multiplier*n``."""
    mean_cap = float(cap_multiplier)
    if mean_cap > 8.0:
        # The binomial construction tops out at mean 8; larger targets tile
        # it: capacity = (1+X) summed k times keeps the same relative spread.
        k = int(np.ceil(mean_cap / 8.0))
        per = mean_cap / k
        caps = sum(
            (1 + rng.binomial(7, (per - 1.0) / 7.0, size=n)) for _ in range(k)
        )
        from ..bins.arrays import BinArray

        return BinArray(caps.astype(np.int64))
    return binomial_random_bins(n, mean_cap, rng)


def _one_run(seed, *, n: int, cap_multiplier: int, rounds: int, d: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    bins = _draw_bins(rng, n, cap_multiplier)
    cap = bins.total_capacity
    checkpoints = [i * cap for i in range(1, rounds + 1)]
    res = simulate(bins, m=rounds * cap, d=d, seed=rng, snapshot_at=checkpoints)
    return np.asarray([s.gap for s in res.snapshots])


def _ensemble_block(seeds, *, n: int, cap_multiplier: int, rounds: int, d: int) -> StreamingProfile:
    """Lockstep block for the heavily loaded case.

    Lockstep replication requires one shared capacity vector (and thus one
    shared ball schedule) per block, so the block draws its capacities once
    from its first child seed and all of its replications rethrow balls into
    that array.  Capacity randomness is then sampled per *block* instead of
    per repetition — the estimator stays unbiased (blocks are independent),
    but averaging over the capacity randomness requires many blocks, which
    is why the fig16 runner forces a small block size instead of taking the
    executor's width-optimised default.
    """
    rng = block_parameter_rng(seeds)
    bins = _draw_bins(rng, n, cap_multiplier)
    cap = bins.total_capacity
    checkpoints = [i * cap for i in range(1, rounds + 1)]
    res = simulate_ensemble(
        bins,
        repetitions=len(seeds),
        m=rounds * cap,
        d=d,
        seed=rng,
        seed_mode="blocked",
        snapshot_at=checkpoints,
    )
    gaps = np.stack([s.gaps for s in res.snapshots], axis=1)  # (R, rounds)
    return StreamingProfile(rounds, sort=False).update(gaps)


@register(
    "fig16",
    "Heavily loaded case: max-minus-average over time",
    "Figure 16",
    "n=10,000 random-capacity bins, CAP in {n,2n,5n,10n}; throw 100*CAP balls; gap at each i*CAP",
)
def run(
    scale: float = 0.03,
    seed=20260612,
    workers: int | None = 1,
    progress=None,
    *,
    n: int = PAPER_N,
    cap_multipliers=PAPER_CAP_MULTIPLIERS,
    rounds: int = PAPER_ROUNDS,
    d: int = PAPER_D,
    repetitions: int | None = None,
    engine: str = "scalar",
    block_size: int | None = None,
    checkpoint=None,
) -> ExperimentResult:
    """Figure 16: deviation of max from average as balls accumulate."""
    engine = resolve_engine(engine)
    reps = repetitions if repetitions is not None else scaled_reps(PAPER_REPS, scale)
    seeds = np.random.SeedSequence(seed).spawn(len(cap_multipliers))
    series: dict[str, np.ndarray] = {}
    slopes: dict[str, float] = {}
    x = np.arange(1, rounds + 1)
    for mult, s in zip(cap_multipliers, seeds):
        kwargs = {"n": n, "cap_multiplier": int(mult), "rounds": rounds, "d": d}
        if engine == "ensemble":
            # Small blocks (unless the request pins its own width) so the
            # capacity distribution is averaged over at least ~8 independent
            # draws (each block shares one capacity vector); the default
            # 128-wide blocks would collapse all of the capacity randomness
            # into a single realisation at paper reps.
            reducer = run_ensemble_reduced(
                _ensemble_block, reps, seed=s, workers=workers,
                kwargs=kwargs, progress=progress,
                block_size=shared_param_block_size(reps, block_size),
                checkpoint=checkpoint, label="fig16",
            )
            curve = reducer.profile().mean
        else:
            outs = run_repetitions(
                _one_run, reps, seed=s, workers=workers,
                kwargs=kwargs, progress=progress, label="fig16",
            )
            curve = np.vstack(outs).mean(axis=0)
        name = f"CAP = {mult}*n"
        series[name] = curve
        # Least-squares slope over rounds: the paper's claim is ~0 slope.
        slopes[name] = float(np.polyfit(x, curve, 1)[0])
    return ExperimentResult(
        experiment_id="fig16",
        title="Heavily loaded: deviation of maximum from average load",
        x_name="balls_thrown_in_CAP_units",
        x_values=x,
        series=series,
        parameters={
            "n": n, "d": d, "cap_multipliers": [int(m) for m in cap_multipliers],
            "rounds": rounds, "repetitions": reps, "seed": seed, "engine": engine,
        },
        extra={
            "per_series_slope": slopes,
            "expected_shape": "parallel, essentially flat lines; higher CAP closer to zero",
        },
    )
