"""Vose alias method for O(1) weighted sampling.

Each ball in the simulation draws ``d`` bin indices from a fixed discrete
distribution (by default proportional to bin capacity).  For a run of ``m``
balls that is ``m * d`` draws from the *same* distribution, which is exactly
the regime where the alias method pays off: O(n) preprocessing, then O(1) per
draw, and the draw loop vectorises over NumPy arrays so whole runs' choices
are generated in a handful of array operations.

The implementation follows Vose's numerically robust variant of Walker's
method: probabilities are scaled by ``n``, split into "small" (< 1) and
"large" (>= 1) work lists, and each table slot is packed with at most two
outcomes (itself and one alias).
"""

from __future__ import annotations

import numpy as np

from .rngutils import make_rng

__all__ = ["AliasSampler"]


class AliasSampler:
    """Sampler over ``{0, .., n-1}`` with fixed weights, O(1) per draw.

    Parameters
    ----------
    weights:
        Non-negative weights, not necessarily normalised.  At least one must
        be positive.  Zero-weight outcomes are never drawn.

    Notes
    -----
    The sampler is immutable after construction; the probability vector it
    realises is available as :attr:`probabilities`.
    """

    __slots__ = ("_n", "_prob", "_alias", "_probabilities")

    def __init__(self, weights):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1:
            raise ValueError(f"weights must be one-dimensional, got shape {w.shape}")
        if w.size == 0:
            raise ValueError("weights must be non-empty")
        if not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        total = float(w.sum())
        if total <= 0.0:
            raise ValueError("at least one weight must be positive")

        n = w.size
        p = w / total
        scaled = p * n

        # Vose's two-stack construction.  `prob[i]` is the probability of
        # returning `i` itself when column `i` is hit; otherwise the alias.
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        small: list[int] = []
        large: list[int] = []
        for i, s in enumerate(scaled):
            (small if s < 1.0 else large).append(i)
        scaled = scaled.copy()
        while small and large:
            lo = small.pop()
            hi = large.pop()
            prob[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            (small if scaled[hi] < 1.0 else large).append(hi)
        # Leftovers are 1.0 up to float error.
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0

        self._n = n
        self._prob = prob
        self._alias = alias
        self._probabilities = p

    @property
    def n(self) -> int:
        """Number of outcomes."""
        return self._n

    @property
    def probabilities(self) -> np.ndarray:
        """Normalised probability vector realised by the sampler (read-only view)."""
        view = self._probabilities.view()
        view.flags.writeable = False
        return view

    def sample(self, size: int | tuple[int, ...], rng=None) -> np.ndarray:
        """Draw *size* outcomes as an ``int64`` array.

        ``size`` may be an int or a shape tuple.  The draw is fully
        vectorised: one uniform batch selects columns, a second decides
        column-vs-alias.
        """
        gen = make_rng(rng)
        cols = gen.integers(0, self._n, size=size, dtype=np.int64)
        accept = gen.random(size=size) < self._prob[cols]
        return np.where(accept, cols, self._alias[cols])

    def sample_one(self, rng=None) -> int:
        """Draw a single outcome (convenience wrapper)."""
        return int(self.sample(1, rng)[0])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AliasSampler(n={self._n})"
