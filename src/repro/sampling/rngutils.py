"""Reproducible random-number-stream management.

Every stochastic component of the library draws from a
:class:`numpy.random.Generator`.  Experiments that run many independent
repetitions need many *statistically independent* streams that are still
fully determined by one master seed; NumPy's :class:`~numpy.random.SeedSequence`
spawning mechanism provides exactly that, and this module wraps it in a small,
explicit API so that callers never hand-roll ``seed + i`` arithmetic (which
produces correlated streams).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = [
    "make_rng",
    "spawn_rngs",
    "spawn_seed_sequences",
    "derive_substream",
    "RngStreamPool",
]


def make_rng(seed: int | None | np.random.Generator | np.random.SeedSequence = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (OS entropy), an integer, a ``SeedSequence`` or an
    existing ``Generator`` (returned unchanged), so that every public function
    in the library can take a single ``seed`` argument of any of these types.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: int | None | np.random.SeedSequence, count: int) -> list[np.random.SeedSequence]:
    """Spawn *count* independent child :class:`SeedSequence` objects.

    The children are independent of each other and of any other spawn from
    the same parent, which makes them safe to hand to worker processes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return parent.spawn(count)


def spawn_rngs(seed: int | None | np.random.SeedSequence, count: int) -> list[np.random.Generator]:
    """Spawn *count* independent generators from one master seed."""
    return [np.random.default_rng(ss) for ss in spawn_seed_sequences(seed, count)]


def derive_substream(seed: int | None | np.random.SeedSequence, *path: int) -> np.random.Generator:
    """Derive a generator addressed by a hierarchical integer *path*.

    ``derive_substream(seed, 3, 7)`` always denotes the same stream: child 3
    of the master sequence, then child 7 of that child.  Useful when an
    experiment wants repetition ``i`` of sweep point ``j`` to be reproducible
    in isolation without generating all earlier streams.
    """
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    for key in path:
        if key < 0:
            raise ValueError(f"path entries must be non-negative, got {key}")
        ss = ss.spawn(key + 1)[key]
    return np.random.default_rng(ss)


class RngStreamPool:
    """Lazily spawned pool of independent generators under one master seed.

    The pool hands out stream ``i`` on demand; requesting the same index twice
    returns generators initialised from the same child seed (a *fresh*
    generator each time, so state is not shared between requests).
    """

    def __init__(self, seed: int | None | np.random.SeedSequence = None):
        self._parent = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        self._children: list[np.random.SeedSequence] = []

    def _ensure(self, count: int) -> None:
        if count > len(self._children):
            self._children.extend(self._parent.spawn(count - len(self._children)))

    def stream(self, index: int) -> np.random.Generator:
        """Return a fresh generator for child stream *index*."""
        if index < 0:
            raise IndexError(f"stream index must be non-negative, got {index}")
        self._ensure(index + 1)
        return np.random.default_rng(self._children[index])

    def streams(self, count: int) -> list[np.random.Generator]:
        """Return fresh generators for the first *count* streams."""
        self._ensure(count)
        return [np.random.default_rng(ss) for ss in self._children[:count]]

    def seed_entropy(self) -> Sequence[int]:
        """Entropy of the master seed (for provenance records)."""
        ent = self._parent.entropy
        if ent is None:
            return ()
        if isinstance(ent, int):
            return (ent,)
        return tuple(ent)

    def __iter__(self) -> Iterator[np.random.Generator]:
        i = 0
        while True:
            yield self.stream(i)
            i += 1
