"""Weighted sampling substrate: samplers, probability models, RNG streams."""

from .alias import AliasSampler
from .cdf import CdfSampler
from .distributions import (
    CustomProbability,
    PowerProbability,
    ProbabilityModel,
    ProportionalProbability,
    ThresholdProbability,
    UniformProbability,
    probability_model,
)
from .rngutils import (
    RngStreamPool,
    derive_substream,
    make_rng,
    spawn_rngs,
    spawn_seed_sequences,
)

__all__ = [
    "AliasSampler",
    "CdfSampler",
    "ProbabilityModel",
    "ProportionalProbability",
    "UniformProbability",
    "PowerProbability",
    "ThresholdProbability",
    "CustomProbability",
    "probability_model",
    "make_rng",
    "spawn_rngs",
    "spawn_seed_sequences",
    "derive_substream",
    "RngStreamPool",
]
