"""Probability models over bins.

The paper studies several ways to turn a capacity vector ``c_1..c_n`` into a
selection distribution for the balls' random choices:

* **proportional** — ``p_i = c_i / C`` — the paper's default (Sections 2–4).
* **uniform** — ``p_i = 1/n`` — the standard-game distribution, used as a
  baseline and in the discussion of alternatives in Section 1.
* **power** — ``p_i = c_i^t / sum_j c_j^t`` — Section 4.5's family; ``t = 1``
  recovers proportional, ``t = 0`` uniform, and larger ``t`` shifts mass to
  the big bins (Figures 17 and 18 sweep ``t``).
* **threshold** — probability ``1/(alpha*n)`` for bins of capacity at least
  ``q`` and 0 otherwise — the distribution constructed in Theorem 5's proof.
* **custom** — an arbitrary user-supplied weight vector.

Every model produces a normalised weight vector via :meth:`weights`, and a
ready-to-draw sampler via :meth:`sampler`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .alias import AliasSampler
from .cdf import CdfSampler

__all__ = [
    "ProbabilityModel",
    "ProportionalProbability",
    "UniformProbability",
    "PowerProbability",
    "ThresholdProbability",
    "CustomProbability",
    "probability_model",
]


def _as_capacities(capacities) -> np.ndarray:
    caps = np.asarray(capacities, dtype=np.float64)
    if caps.ndim != 1:
        raise ValueError(f"capacities must be one-dimensional, got shape {caps.shape}")
    if caps.size == 0:
        raise ValueError("capacities must be non-empty")
    if np.any(caps <= 0):
        raise ValueError("capacities must be positive")
    return caps


class ProbabilityModel(ABC):
    """Maps a capacity vector to a normalised bin-selection distribution."""

    #: Short stable identifier, used in experiment provenance records.
    name: str = "abstract"

    @abstractmethod
    def weights(self, capacities) -> np.ndarray:
        """Return the normalised probability vector for *capacities*."""

    def sampler(self, capacities, *, method: str = "alias"):
        """Build a sampler realising this model over *capacities*.

        ``method`` selects the backend: ``"alias"`` (O(1) per draw, default)
        or ``"cdf"`` (O(log n) per draw, cheaper setup).
        """
        w = self.weights(capacities)
        if method == "alias":
            return AliasSampler(w)
        if method == "cdf":
            return CdfSampler(w)
        raise ValueError(f"unknown sampler method {method!r}; expected 'alias' or 'cdf'")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ProportionalProbability(ProbabilityModel):
    """``p_i = c_i / C`` — the paper's default model."""

    name = "proportional"

    def weights(self, capacities) -> np.ndarray:
        caps = _as_capacities(capacities)
        return caps / caps.sum()


class UniformProbability(ProbabilityModel):
    """``p_i = 1/n`` regardless of capacities (standard-game choices)."""

    name = "uniform"

    def weights(self, capacities) -> np.ndarray:
        caps = _as_capacities(capacities)
        return np.full(caps.size, 1.0 / caps.size)


class PowerProbability(ProbabilityModel):
    """``p_i proportional to c_i^t`` — Section 4.5's exponent family.

    ``t`` may be any finite real; ``t=1`` is proportional, ``t=0`` uniform.
    """

    name = "power"

    def __init__(self, exponent: float):
        if not np.isfinite(exponent):
            raise ValueError(f"exponent must be finite, got {exponent}")
        self.exponent = float(exponent)

    def weights(self, capacities) -> np.ndarray:
        caps = _as_capacities(capacities)
        # Work in log space to tolerate large exponents on large capacities.
        logw = self.exponent * np.log(caps)
        logw -= logw.max()
        w = np.exp(logw)
        return w / w.sum()

    def __repr__(self) -> str:
        return f"PowerProbability(exponent={self.exponent})"


class ThresholdProbability(ProbabilityModel):
    """Theorem 5's distribution: route only to bins of capacity >= q.

    Bins meeting the threshold share the probability mass equally (the proof
    assigns each of the ``alpha * n`` qualifying bins probability
    ``1 / (alpha * n)``); all other bins get probability zero.
    """

    name = "threshold"

    def __init__(self, min_capacity: float):
        if not np.isfinite(min_capacity) or min_capacity <= 0:
            raise ValueError(f"min_capacity must be positive and finite, got {min_capacity}")
        self.min_capacity = float(min_capacity)

    def weights(self, capacities) -> np.ndarray:
        caps = _as_capacities(capacities)
        eligible = caps >= self.min_capacity
        count = int(eligible.sum())
        if count == 0:
            raise ValueError(
                f"no bin has capacity >= {self.min_capacity}; "
                "ThresholdProbability requires at least one eligible bin"
            )
        w = np.zeros(caps.size)
        w[eligible] = 1.0 / count
        return w

    def __repr__(self) -> str:
        return f"ThresholdProbability(min_capacity={self.min_capacity})"


class CustomProbability(ProbabilityModel):
    """Arbitrary user-supplied weights (normalised on use).

    The weight vector length must match the capacity vector length; the
    capacities themselves are only used for that validation.
    """

    name = "custom"

    def __init__(self, weights):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1:
            raise ValueError(f"weights must be one-dimensional, got shape {w.shape}")
        if w.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be non-negative and finite")
        if w.sum() <= 0:
            raise ValueError("at least one weight must be positive")
        self._weights = w / w.sum()

    def weights(self, capacities) -> np.ndarray:
        caps = _as_capacities(capacities)
        if caps.size != self._weights.size:
            raise ValueError(
                f"weight vector has length {self._weights.size} "
                f"but there are {caps.size} bins"
            )
        return self._weights.copy()

    def __repr__(self) -> str:
        return f"CustomProbability(n={self._weights.size})"


def probability_model(spec) -> ProbabilityModel:
    """Coerce *spec* into a :class:`ProbabilityModel`.

    Accepts a model instance (returned unchanged), one of the string names
    ``"proportional"`` / ``"uniform"``, a ``("power", t)`` or
    ``("threshold", q)`` tuple, or a raw weight vector.
    """
    if isinstance(spec, ProbabilityModel):
        return spec
    if isinstance(spec, str):
        if spec == "proportional":
            return ProportionalProbability()
        if spec == "uniform":
            return UniformProbability()
        raise ValueError(f"unknown probability model name {spec!r}")
    if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
        kind, param = spec
        if kind == "power":
            return PowerProbability(param)
        if kind == "threshold":
            return ThresholdProbability(param)
        raise ValueError(f"unknown parameterised model {kind!r}")
    return CustomProbability(spec)
