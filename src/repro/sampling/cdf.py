"""CDF-inversion sampler: O(log n) per draw via ``searchsorted``.

Kept alongside the alias method for two reasons: it is the natural reference
implementation to cross-check the alias tables against (both must realise the
same distribution), and for small ``n`` or few draws its construction cost
(one cumulative sum) beats building alias tables.
"""

from __future__ import annotations

import numpy as np

from .rngutils import make_rng

__all__ = ["CdfSampler"]


class CdfSampler:
    """Weighted sampler over ``{0, .., n-1}`` backed by binary search.

    Accepts the same weight vectors as :class:`~repro.sampling.alias.AliasSampler`
    and realises exactly the same distribution.
    """

    __slots__ = ("_n", "_cdf", "_probabilities")

    def __init__(self, weights):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1:
            raise ValueError(f"weights must be one-dimensional, got shape {w.shape}")
        if w.size == 0:
            raise ValueError("weights must be non-empty")
        if not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        total = float(w.sum())
        if total <= 0.0:
            raise ValueError("at least one weight must be positive")

        p = w / total
        cdf = np.cumsum(p)
        cdf[-1] = 1.0  # guard against accumulated float error at the top end
        self._n = w.size
        self._cdf = cdf
        self._probabilities = p

    @property
    def n(self) -> int:
        """Number of outcomes."""
        return self._n

    @property
    def probabilities(self) -> np.ndarray:
        """Normalised probability vector (read-only view)."""
        view = self._probabilities.view()
        view.flags.writeable = False
        return view

    def sample(self, size: int | tuple[int, ...], rng=None) -> np.ndarray:
        """Draw *size* outcomes as an ``int64`` array."""
        gen = make_rng(rng)
        u = gen.random(size=size)
        # side="right" maps u in [cdf[i-1], cdf[i]) to outcome i, so outcomes
        # of zero probability (zero-width intervals) are never selected.
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def sample_one(self, rng=None) -> int:
        """Draw a single outcome."""
        return int(self.sample(1, rng)[0])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CdfSampler(n={self._n})"
