"""Consistent-hashing ring (the paper's motivating environment).

Peers are mapped to points of the unit circle; every peer is responsible for
the arc that ends at its position, and a key hashed to a point is served by
the first peer encountered anti-clockwise — i.e. the peer whose position is
the smallest value ``>=`` the point (wrapping).  Arc lengths are therefore
the peers' implicit "capacities": non-uniform by construction, with maximum
arc a ``Θ(log n)`` factor above the average — exactly the imbalance the
introduction cites as motivation for non-uniform balls-into-bins models.

Virtual nodes (multiple positions per peer) are supported since they are the
classical mitigation whose effect examples can measure against the paper's
capacity-aware protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.rngutils import make_rng
from .hashing import hash_to_unit

__all__ = ["RingPeer", "ConsistentHashRing"]


@dataclass(frozen=True)
class RingPeer:
    """A peer: an identifier plus the number of virtual positions it holds."""

    peer_id: str
    virtual_nodes: int = 1

    def __post_init__(self):
        if self.virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {self.virtual_nodes}")


class ConsistentHashRing:
    """Immutable snapshot of a consistent-hashing ring.

    Parameters
    ----------
    peers:
        Peer descriptors.  Positions are derived deterministically from the
        peer id and virtual-node index — no RNG involved — so a ring is
        reproducible from its peer list alone.
    """

    def __init__(self, peers):
        self.peers: tuple[RingPeer, ...] = tuple(
            p if isinstance(p, RingPeer) else RingPeer(str(p)) for p in peers
        )
        if not self.peers:
            raise ValueError("a ring needs at least one peer")
        ids = [p.peer_id for p in self.peers]
        if len(set(ids)) != len(ids):
            raise ValueError("peer ids must be unique")

        positions: list[float] = []
        owners: list[int] = []
        for idx, peer in enumerate(self.peers):
            for v in range(peer.virtual_nodes):
                positions.append(hash_to_unit(f"{peer.peer_id}#{v}"))
                owners.append(idx)
        pos = np.asarray(positions)
        own = np.asarray(owners, dtype=np.int64)
        order = np.argsort(pos, kind="stable")
        self._positions = pos[order]
        self._owners = own[order]

    # -- structure -----------------------------------------------------------

    @property
    def n_peers(self) -> int:
        """Number of physical peers."""
        return len(self.peers)

    @property
    def positions(self) -> np.ndarray:
        """Sorted virtual-node positions in ``[0, 1)``."""
        return self._positions

    def lookup(self, point: float) -> int:
        """Peer index responsible for *point* (anti-clockwise successor)."""
        if not 0.0 <= point < 1.0:
            point = point % 1.0
        i = int(np.searchsorted(self._positions, point, side="left"))
        if i == len(self._positions):
            i = 0  # wrap to the first position
        return int(self._owners[i])

    def lookup_key(self, key) -> int:
        """Peer responsible for a hashed *key*."""
        return self.lookup(hash_to_unit(key))

    def lookup_batch(self, points) -> np.ndarray:
        """Vectorised :meth:`lookup` over an array of *points* (any shape).

        Identical to calling :meth:`lookup` per point, including the wrap
        normalisation of out-of-range points: a point outside ``[0, 1)``
        is reduced modulo 1 *before* the successor search.  (The historic
        inline ``searchsorted`` + wrap-to-0 in ``p2p.workload`` skipped
        that normalisation, so an out-of-range point — e.g. 1.2, whose
        successor is the peer at 0.2's arc — silently wrapped to the first
        virtual position instead; all batch call sites now share this one
        implementation so the scalar and vectorised paths cannot diverge.)
        """
        pts = np.asarray(points, dtype=np.float64)
        out_of_range = (pts < 0.0) | (pts >= 1.0)
        if out_of_range.any():
            pts = np.where(out_of_range, np.mod(pts, 1.0), pts)
            # Python's float mod (which lookup uses) maps tiny negatives to
            # 1.0 by rounding; np.mod agrees, but the successor search
            # still needs the index wrap below to land them on position 0.
        idx = np.searchsorted(self._positions, pts, side="left")
        idx = np.where(idx == self._positions.size, 0, idx)
        return self._owners[idx]

    def arc_lengths(self) -> np.ndarray:
        """Total arc length owned by each peer (sums to 1).

        A virtual node at position ``p`` owns the arc from its predecessor
        position to ``p``.
        """
        pos = self._positions
        k = pos.size
        arcs = np.empty(k)
        arcs[0] = pos[0] + (1.0 - pos[-1])  # wraps around zero
        arcs[1:] = np.diff(pos)
        totals = np.zeros(self.n_peers)
        np.add.at(totals, self._owners, arcs)
        return totals

    def arc_imbalance(self) -> float:
        """Max arc over average arc — the log(n)-ish skew the paper cites."""
        arcs = self.arc_lengths()
        return float(arcs.max() * self.n_peers)

    # -- bridging to the balls-into-bins model --------------------------------

    def as_bin_array(self, resolution: int = 1000) -> BinArray:
        """Quantise arc lengths into integer capacities.

        Each peer's capacity is ``max(1, round(arc * n * resolution /
        n))``... more precisely ``max(1, round(arc * resolution))`` so the
        total capacity is about *resolution*.  This turns the ring into a
        heterogeneous :class:`BinArray` whose proportional-selection game is
        statistically the d-point ring game.
        """
        if resolution < self.n_peers:
            raise ValueError(
                f"resolution ({resolution}) should be at least the number of peers ({self.n_peers})"
            )
        arcs = self.arc_lengths()
        caps = np.maximum(1, np.round(arcs * resolution)).astype(np.int64)
        return BinArray(caps)

    @classmethod
    def random(cls, n_peers: int, virtual_nodes: int = 1, seed=None) -> "ConsistentHashRing":
        """Ring of *n_peers* with randomised ids (distinct per seed)."""
        if n_peers <= 0:
            raise ValueError(f"n_peers must be positive, got {n_peers}")
        rng = make_rng(seed)
        tokens = rng.integers(0, 1 << 62, size=n_peers)
        peers = [RingPeer(f"peer-{int(t):x}-{i}", virtual_nodes) for i, t in enumerate(tokens)]
        return cls(peers)

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(n_peers={self.n_peers}, "
            f"virtual_positions={self._positions.size}, "
            f"imbalance={self.arc_imbalance():.2f}x)"
        )
