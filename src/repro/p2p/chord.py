"""Chord-style lookup overlay.

A minimal but faithful Chord network over the ``2^bits`` identifier space:
every node keeps a finger table (``finger[i]`` = successor of
``node_id + 2^i``) and lookups hop greedily through the closest preceding
finger, giving the classical ``O(log n)`` hop count.  The examples use it to
source realistic key→peer assignment skew for the balls-into-bins model; the
hop-count accounting doubles as a sanity check that the overlay is wired
correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hashing import hash_key

__all__ = ["ChordNode", "ChordNetwork", "LookupResult"]


@dataclass(frozen=True)
class LookupResult:
    """Result of a Chord lookup: the owning node id and the route taken."""

    owner: int
    hops: int
    path: tuple[int, ...]


class ChordNode:
    """One Chord node: id plus finger table (filled by the network)."""

    __slots__ = ("node_id", "fingers", "successor")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.fingers: list[int] = []
        self.successor: int = node_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChordNode(id={self.node_id})"


def _in_half_open(x: int, a: int, b: int, modulus: int) -> bool:
    """True when ``x`` lies in the circular interval ``(a, b]``."""
    if a == b:
        return True  # whole circle
    if a < b:
        return a < x <= b
    return x > a or x <= b


class ChordNetwork:
    """A static Chord overlay built from hashed node names.

    Parameters
    ----------
    node_names:
        Distinct names; each is hashed into the ``2^bits`` space.  Hash
        collisions (astronomically unlikely at 64 bits, possible at small
        ``bits``) raise ``ValueError``.
    bits:
        Identifier-space width; the finger table has ``bits`` entries.
    """

    def __init__(self, node_names, bits: int = 32):
        if bits < 1 or bits > 64:
            raise ValueError(f"bits must be in [1, 64], got {bits}")
        self.bits = bits
        self.modulus = 1 << bits
        ids = {}
        for name in node_names:
            node_id = hash_key(name) % self.modulus
            if node_id in ids:
                raise ValueError(
                    f"hash collision between {ids[node_id]!r} and {name!r} at {bits} bits"
                )
            ids[node_id] = name
        if not ids:
            raise ValueError("a Chord network needs at least one node")
        self.names = ids
        self.node_ids = np.asarray(sorted(ids), dtype=np.uint64)
        self.nodes = {int(i): ChordNode(int(i)) for i in self.node_ids}
        self._build_fingers()

    def _successor_id(self, point: int) -> int:
        """First node id clockwise from *point* (inclusive)."""
        i = int(np.searchsorted(self.node_ids, point, side="left"))
        if i == len(self.node_ids):
            i = 0
        return int(self.node_ids[i])

    def _build_fingers(self) -> None:
        for node in self.nodes.values():
            node.fingers = [
                self._successor_id((node.node_id + (1 << k)) % self.modulus)
                for k in range(self.bits)
            ]
            node.successor = node.fingers[0]

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the overlay."""
        return len(self.nodes)

    def owner_of(self, key) -> int:
        """Node id responsible for *key* (successor of its hash)."""
        return self._successor_id(hash_key(key) % self.modulus)

    def lookup(self, key, start: int | None = None) -> LookupResult:
        """Route a lookup for *key* from *start* (default: first node).

        Uses the standard closest-preceding-finger rule; the hop count is
        the number of routing steps before the owner is reached.
        """
        target = hash_key(key) % self.modulus
        current = int(self.node_ids[0]) if start is None else int(start)
        if current not in self.nodes:
            raise KeyError(f"start node {current} is not in the network")
        path = [current]
        # Bounded by `bits` hops: each hop at least halves the remaining
        # circular distance.
        for _ in range(self.bits + 1):
            node = self.nodes[current]
            if _in_half_open(target, current, node.successor, self.modulus):
                owner = node.successor
                return LookupResult(owner=owner, hops=len(path) - 1 + 1, path=tuple(path + [owner]))
            nxt = current
            for finger in reversed(node.fingers):
                if finger != current and _in_half_open(finger, current, (target - 1) % self.modulus, self.modulus):
                    nxt = finger
                    break
            if nxt == current:
                nxt = node.successor
            current = nxt
            path.append(current)
        # Fallback: the successor scan above always terminates within
        # bits+1 hops on a consistent table; reaching here indicates a bug.
        raise RuntimeError("Chord lookup failed to converge")  # pragma: no cover

    def arc_sizes(self) -> dict[int, int]:
        """Identifier-space arc owned by each node (sums to the modulus)."""
        ids = self.node_ids
        sizes = {}
        for i, node_id in enumerate(ids):
            prev = ids[i - 1] if i else ids[-1]
            size = int((int(node_id) - int(prev)) % self.modulus)
            if size == 0:
                size = self.modulus  # single-node network owns everything
            sizes[int(node_id)] = size
        return sizes
