"""Deterministic hashing utilities for the P2P substrate.

The ring and Chord simulators need stable, well-mixed hash values that do not
depend on ``PYTHONHASHSEED``.  We use the splitmix64 finaliser — a cheap
bijective mixer with good avalanche behaviour — over explicit 64-bit lanes.
"""

from __future__ import annotations

__all__ = ["splitmix64", "hash_key", "hash_to_unit", "point_sequence"]

_MASK = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """The splitmix64 finaliser: a 64-bit bijection with strong mixing."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return (x ^ (x >> 31)) & _MASK


def hash_key(key, salt: int = 0) -> int:
    """Hash *key* (str, bytes or int) with *salt* into a 64-bit value."""
    if isinstance(key, int):
        material = key & _MASK
    elif isinstance(key, str):
        material = int.from_bytes(key.encode("utf-8")[:8].ljust(8, b"\0"), "little")
        # fold longer strings in 8-byte lanes
        data = key.encode("utf-8")
        for off in range(8, len(data), 8):
            lane = int.from_bytes(data[off : off + 8].ljust(8, b"\0"), "little")
            material = splitmix64(material ^ lane)
    elif isinstance(key, bytes):
        material = int.from_bytes(key[:8].ljust(8, b"\0"), "little")
        for off in range(8, len(key), 8):
            lane = int.from_bytes(key[off : off + 8].ljust(8, b"\0"), "little")
            material = splitmix64(material ^ lane)
    else:
        raise TypeError(f"key must be int, str or bytes, got {type(key).__name__}")
    return splitmix64(material ^ splitmix64(salt & _MASK))


def hash_to_unit(key, salt: int = 0) -> float:
    """Map *key* to a point of the unit interval ``[0, 1)``."""
    return hash_key(key, salt) / float(1 << 64)


def point_sequence(key, count: int) -> list[float]:
    """The first *count* independent ring points of *key* (salted re-hashes).

    Byers et al.'s d-point scheme gives each request ``d`` independent
    positions; salting with the probe index reproduces that determinism.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [hash_to_unit(key, salt=i + 1) for i in range(count)]
