"""A key-value DHT over the consistent-hashing ring, with churn.

Completes the motivating substrate: the introduction's P2P systems don't
just hash once — peers join and leave, and the selling point of consistent
hashing is that each membership change remaps only a ``1/n`` fraction of
keys.  :class:`DHT` stores keys with ``r``-fold successor replication,
supports join/leave with exact key-movement accounting, and exposes the
per-peer key-count skew that the balls-into-bins model abstracts.

The d-point variant (:meth:`DHT.store_d_choice`) places each key on the
least-loaded of ``d`` hashed candidate peers — Byers et al.'s scheme running
on a live table rather than in expectation.
"""

from __future__ import annotations

import numpy as np

from .hashing import hash_to_unit, point_sequence
from .ring import ConsistentHashRing, RingPeer

__all__ = ["DHT"]


class DHT:
    """Replicated key-value directory on a consistent-hashing ring.

    Parameters
    ----------
    peers:
        Initial peer ids (or :class:`RingPeer` descriptors).
    replication:
        Number of *distinct* peers holding each key (successor list).
    virtual_nodes:
        Virtual positions per peer.
    """

    def __init__(self, peers, replication: int = 1, virtual_nodes: int = 1):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.replication = replication
        self.virtual_nodes = virtual_nodes
        self._peer_ids: list[str] = []
        for p in peers:
            pid = p.peer_id if isinstance(p, RingPeer) else str(p)
            self._peer_ids.append(pid)
        if len(self._peer_ids) < replication:
            raise ValueError(
                f"need at least replication={replication} peers, got {len(self._peer_ids)}"
            )
        self._keys: dict[str, tuple[str, ...]] = {}
        # Ring point each key was placed at: the canonical hash point for
        # store(), the chosen candidate point for store_d_choice().  Churn
        # remaps from this point, so d-choice placements survive membership
        # changes instead of being silently canonicalised.
        self._key_points: dict[str, float] = {}
        self._rebuild_ring()

    # -- ring plumbing ---------------------------------------------------------

    def _rebuild_ring(self) -> None:
        self._ring = ConsistentHashRing(
            [RingPeer(pid, self.virtual_nodes) for pid in self._peer_ids]
        )

    @property
    def ring(self) -> ConsistentHashRing:
        """The current ring snapshot (rebuilt on every membership change)."""
        return self._ring

    @property
    def n_peers(self) -> int:
        """Current number of peers."""
        return len(self._peer_ids)

    @property
    def peer_ids(self) -> tuple[str, ...]:
        """Current peer ids."""
        return tuple(self._peer_ids)

    def _successors(self, point: float, count: int) -> tuple[str, ...]:
        """First *count* distinct peers anti-clockwise from *point*."""
        ring = self._ring
        pos = ring.positions
        start = int(np.searchsorted(pos, point, side="left"))
        owners: list[str] = []
        for step in range(pos.size):
            idx = (start + step) % pos.size
            pid = self._peer_ids[ring._owners[idx]]
            if pid not in owners:
                owners.append(pid)
                if len(owners) == count:
                    break
        return tuple(owners)

    def owners_of(self, key: str) -> tuple[str, ...]:
        """The replication set a key *should* live on right now."""
        return self._successors(hash_to_unit(key), self.replication)

    # -- storage ---------------------------------------------------------------

    def store(self, key: str) -> tuple[str, ...]:
        """Place *key* on its canonical successor replication set."""
        point = hash_to_unit(key)
        owners = self._successors(point, self.replication)
        self._keys[key] = owners
        self._key_points[key] = point
        return owners

    def store_d_choice(self, key: str, d: int = 2) -> tuple[str, ...]:
        """Byers et al.: hash *key* to *d* points, store at the point whose
        primary owner currently holds the fewest keys (replicas follow the
        chosen point's successor list)."""
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        loads = self.key_counts()
        best_point = None
        best_load = None
        for point in point_sequence(key, d):
            owner = self._successors(point, 1)[0]
            load = loads.get(owner, 0)
            if best_load is None or load < best_load:
                best_point, best_load = point, load
        owners = self._successors(best_point, self.replication)
        self._keys[key] = owners
        self._key_points[key] = best_point
        return owners

    def lookup(self, key: str) -> tuple[str, ...]:
        """Peers currently recorded as holding *key* (KeyError if absent)."""
        return self._keys[key]

    def key_counts(self) -> dict[str, int]:
        """Primary-copy count per peer (the bins-model load)."""
        counts = {pid: 0 for pid in self._peer_ids}
        for owners in self._keys.values():
            primary = owners[0]
            if primary in counts:
                counts[primary] += 1
        return counts

    def replica_counts(self) -> dict[str, int]:
        """Total copies (primary + replicas) per peer."""
        counts = {pid: 0 for pid in self._peer_ids}
        for owners in self._keys.values():
            for pid in owners:
                if pid in counts:
                    counts[pid] += 1
        return counts

    def skew(self) -> float:
        """Max primary count over the average (1.0 = perfectly even)."""
        counts = list(self.key_counts().values())
        total = sum(counts)
        if total == 0:
            return 0.0
        return max(counts) * len(counts) / total

    # -- churn -----------------------------------------------------------------

    def _remap(self) -> int:
        """Recompute every key's owners from its placement point; return the
        number of copies that land on peers that did not hold them before."""
        moved = 0
        for key, old_owners in list(self._keys.items()):
            new_owners = self._successors(self._key_points[key], self.replication)
            moved += len(set(new_owners) - set(old_owners))
            self._keys[key] = new_owners
        return moved

    def join(self, peer_id: str) -> int:
        """Add a peer; return the number of key copies that moved.

        Consistent hashing's promise: only keys in the new peer's arcs move
        — about ``stored / n`` copies per replica level.
        """
        if peer_id in self._peer_ids:
            raise ValueError(f"peer {peer_id!r} already present")
        self._peer_ids.append(peer_id)
        self._rebuild_ring()
        return self._remap()

    def leave(self, peer_id: str) -> int:
        """Remove a peer; return the number of key copies that moved."""
        if peer_id not in self._peer_ids:
            raise KeyError(f"peer {peer_id!r} not present")
        if len(self._peer_ids) - 1 < self.replication:
            raise ValueError("cannot drop below the replication factor")
        self._peer_ids.remove(peer_id)
        self._rebuild_ring()
        return self._remap()

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys
