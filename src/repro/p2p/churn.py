"""Churn driver: membership dynamics over a DHT.

Plays a sequence of join/leave events against a :class:`~repro.p2p.dht.DHT`
and records, per event, the key copies moved and the resulting primary-copy
skew — the live-system counterpart of the static arc-imbalance argument in
the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sampling.rngutils import make_rng
from .dht import DHT

__all__ = ["ChurnEvent", "ChurnTrace", "run_churn"]


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change and its cost.

    ``kind`` is ``"join"``, ``"leave"``, or ``"skip"`` — a leave that was
    drawn while the DHT sat at its replication floor and therefore did not
    happen (the membership is unchanged and ``copies_moved`` is 0;
    ``peer_id`` names the peer that would have left).
    """

    kind: str  # "join", "leave" or "skip"
    peer_id: str
    copies_moved: int
    n_peers_after: int
    skew_after: float


@dataclass
class ChurnTrace:
    """Outcome of a churn run."""

    events: list[ChurnEvent] = field(default_factory=list)

    @property
    def total_moved(self) -> int:
        """Total key copies moved across all events."""
        return sum(e.copies_moved for e in self.events)

    @property
    def mean_moved_per_event(self) -> float:
        """Average movement per membership change."""
        return self.total_moved / len(self.events) if self.events else 0.0

    @property
    def max_skew(self) -> float:
        """Worst primary-copy skew seen after any event."""
        return max((e.skew_after for e in self.events), default=0.0)

    def moved_series(self) -> np.ndarray:
        """Per-event movement as an array (for plotting)."""
        return np.asarray([e.copies_moved for e in self.events], dtype=np.int64)


def run_churn(
    dht: DHT,
    events: int,
    *,
    join_probability: float = 0.5,
    seed=None,
) -> ChurnTrace:
    """Apply *events* random membership changes to *dht* (mutating it).

    Each event is a join of a fresh peer with probability
    *join_probability*, otherwise a leave of a random current peer.  A
    leave drawn while the DHT sits at its replication floor is **skipped**
    — the membership stays unchanged and the event is recorded explicitly
    with ``kind="skip"`` (it is *not* silently converted into a join, so
    ``join_probability=0.0`` really never grows the network).
    """
    if events < 0:
        raise ValueError(f"events must be non-negative, got {events}")
    if not 0.0 <= join_probability <= 1.0:
        raise ValueError(f"join_probability must be in [0, 1], got {join_probability}")
    rng = make_rng(seed)
    trace = ChurnTrace()
    next_id = 0
    for _ in range(events):
        if rng.random() < join_probability:
            pid = f"churn-{next_id}"
            next_id += 1
            while pid in dht.peer_ids:
                pid = f"churn-{next_id}"
                next_id += 1
            moved = dht.join(pid)
            kind = "join"
        else:
            pid = dht.peer_ids[int(rng.integers(0, dht.n_peers))]
            if dht.n_peers <= dht.replication:
                moved = 0
                kind = "skip"
            else:
                moved = dht.leave(pid)
                kind = "leave"
        trace.events.append(
            ChurnEvent(
                kind=kind,
                peer_id=pid,
                copies_moved=moved,
                n_peers_after=dht.n_peers,
                skew_after=dht.skew(),
            )
        )
    return trace
