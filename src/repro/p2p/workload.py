"""Request allocation on rings — the Byers et al. d-point scheme.

Each request hashes to ``d`` independent points on the ring; each point maps
to the peer owning that arc; the request is assigned to a least-loaded of
the ``d`` peers.  Because a peer is hit with probability equal to its arc
length, this is the non-uniform-probability balls-into-bins game of the
related work ([7, 9] in the paper) — the stepping stone to the paper's
capacity-aware model.

Two peer-load notions are provided:

* ``capacity_aware=False`` (Byers et al.): peers are unit bins, load =
  number of requests — the related-work baseline;
* ``capacity_aware=True`` (this paper): peers' capacities are their
  (quantised) arc lengths and Algorithm 1 is applied, so big-arc peers
  deliberately absorb proportionally more requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ensemble import resolve_ensemble_seeds, run_batch_ensemble
from ..core.fast import run_batch
from ..sampling.rngutils import make_rng, spawn_seed_sequences
from .ring import ConsistentHashRing

__all__ = [
    "RingAllocationResult",
    "allocate_requests",
    "RingEnsembleResult",
    "allocate_requests_ensemble",
]


@dataclass(frozen=True)
class RingAllocationResult:
    """Outcome of allocating *m* requests onto a ring."""

    counts: np.ndarray
    capacities: np.ndarray
    m: int
    d: int
    capacity_aware: bool

    @property
    def loads(self) -> np.ndarray:
        """Per-peer loads: requests over capacity (capacity 1 when unaware)."""
        return self.counts / self.capacities

    @property
    def max_load(self) -> float:
        """Maximum per-peer load."""
        return float(self.loads.max())

    @property
    def max_requests(self) -> int:
        """Maximum raw request count on any peer (Byers et al.'s metric)."""
        return int(self.counts.max())


def allocate_requests(
    ring: ConsistentHashRing,
    m: int,
    d: int = 2,
    *,
    capacity_aware: bool = False,
    resolution: int | None = None,
    seed=None,
) -> RingAllocationResult:
    """Allocate *m* requests, each probing *d* random ring points.

    Parameters
    ----------
    ring:
        The consistent-hashing ring.
    m:
        Number of requests.
    d:
        Probes per request (``d = 1`` reproduces plain consistent hashing).
    capacity_aware:
        When true, peers get integer capacities proportional to their arcs
        (quantised at *resolution*) and the paper's Algorithm 1 decides
        among the probed peers; when false every peer is a unit bin
        (Byers et al.).
    resolution:
        Quantisation for capacity-aware mode; defaults to
        ``max(1000, 10 * n_peers)``.
    seed:
        RNG seed for the request points.
    """
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    rng = make_rng(seed)

    if capacity_aware:
        res = resolution if resolution is not None else max(1000, 10 * ring.n_peers)
        caps = ring.as_bin_array(res).capacities
    else:
        caps = np.ones(ring.n_peers, dtype=np.int64)

    # Request points are uniform on the circle; map every point to its peer
    # through the ring's own vectorised lookup (bit-identical to per-point
    # ring.lookup, wrap normalisation included).
    points = rng.random((m, d))
    owners = ring.lookup_batch(points)

    counts: list[int] = [0] * ring.n_peers
    tie_u = rng.random(m)
    run_batch(counts, caps.tolist(), owners.astype(np.int64), tie_u, tie_break="max_capacity")

    return RingAllocationResult(
        counts=np.asarray(counts, dtype=np.int64),
        capacities=caps,
        m=m,
        d=d,
        capacity_aware=capacity_aware,
    )


@dataclass(frozen=True)
class RingEnsembleResult:
    """Outcome of allocating *m* requests in ``R`` lockstep replications."""

    counts: np.ndarray
    capacities: np.ndarray
    m: int
    d: int
    capacity_aware: bool
    seed_mode: str

    @property
    def loads(self) -> np.ndarray:
        """``(R, n_peers)`` per-peer loads."""
        return self.counts / self.capacities

    @property
    def max_loads(self) -> np.ndarray:
        """``(R,)`` per-replication maximum loads."""
        return self.loads.max(axis=1)

    @property
    def max_requests(self) -> np.ndarray:
        """``(R,)`` per-replication maximum raw request counts."""
        return self.counts.max(axis=1)


def allocate_requests_ensemble(
    ring: ConsistentHashRing,
    m: int,
    repetitions: int | None = None,
    d: int = 2,
    *,
    capacity_aware: bool = False,
    resolution: int | None = None,
    seed=None,
    seeds=None,
    seed_mode: str = "spawn",
) -> RingEnsembleResult:
    """Allocate *m* requests onto one shared ring, ``R`` replications at once.

    Parameters mirror :func:`allocate_requests` plus the ensemble seeding
    knobs of :func:`repro.core.ensemble.simulate_ensemble`: with
    ``seed_mode="spawn"`` (or explicit ``seeds=``) replication ``r``
    reproduces ``allocate_requests(ring, m, d, ..., seed=child_r)``
    bit-exactly — same point draws, same owner lookup, same tie stream —
    while ``seed_mode="blocked"`` draws all replications' points from one
    generator.  All replications probe the *same* ring; random rings use the
    shared-params-per-block convention
    (:func:`repro.runtime.executor.block_parameter_rng`).
    """
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    repetitions, seeds = resolve_ensemble_seeds(repetitions, seeds, seed_mode)

    R = repetitions
    if capacity_aware:
        res = resolution if resolution is not None else max(1000, 10 * ring.n_peers)
        caps = ring.as_bin_array(res).capacities
    else:
        caps = np.ones(ring.n_peers, dtype=np.int64)

    points = np.empty((R, m, d), dtype=np.float64)
    tie_u = np.empty((R, m), dtype=np.float64)
    if seed_mode == "spawn":
        if seeds is None:
            seeds = spawn_seed_sequences(seed, R)
        for r, s in enumerate(seeds):
            g = make_rng(s)
            points[r] = g.random((m, d))
            tie_u[r] = g.random(m)
    else:
        block_rng = make_rng(seed)
        points[...] = block_rng.random((R, m, d))
        tie_u[...] = block_rng.random((R, m))

    owners = ring.lookup_batch(points).astype(np.int64)

    counts = np.zeros((R, ring.n_peers), dtype=np.int64)
    run_batch_ensemble(counts, caps, owners, tie_u, tie_break="max_capacity")
    return RingEnsembleResult(
        counts=counts,
        capacities=caps,
        m=m,
        d=d,
        capacity_aware=capacity_aware,
        seed_mode=seed_mode,
    )
