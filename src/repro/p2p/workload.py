"""Request allocation on rings — the Byers et al. d-point scheme.

Each request hashes to ``d`` independent points on the ring; each point maps
to the peer owning that arc; the request is assigned to a least-loaded of
the ``d`` peers.  Because a peer is hit with probability equal to its arc
length, this is the non-uniform-probability balls-into-bins game of the
related work ([7, 9] in the paper) — the stepping stone to the paper's
capacity-aware model.

Two peer-load notions are provided:

* ``capacity_aware=False`` (Byers et al.): peers are unit bins, load =
  number of requests — the related-work baseline;
* ``capacity_aware=True`` (this paper): peers' capacities are their
  (quantised) arc lengths and Algorithm 1 is applied, so big-arc peers
  deliberately absorb proportionally more requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.fast import run_batch
from ..sampling.rngutils import make_rng
from .ring import ConsistentHashRing

__all__ = ["RingAllocationResult", "allocate_requests"]


@dataclass(frozen=True)
class RingAllocationResult:
    """Outcome of allocating *m* requests onto a ring."""

    counts: np.ndarray
    capacities: np.ndarray
    m: int
    d: int
    capacity_aware: bool

    @property
    def loads(self) -> np.ndarray:
        """Per-peer loads: requests over capacity (capacity 1 when unaware)."""
        return self.counts / self.capacities

    @property
    def max_load(self) -> float:
        """Maximum per-peer load."""
        return float(self.loads.max())

    @property
    def max_requests(self) -> int:
        """Maximum raw request count on any peer (Byers et al.'s metric)."""
        return int(self.counts.max())


def allocate_requests(
    ring: ConsistentHashRing,
    m: int,
    d: int = 2,
    *,
    capacity_aware: bool = False,
    resolution: int | None = None,
    seed=None,
) -> RingAllocationResult:
    """Allocate *m* requests, each probing *d* random ring points.

    Parameters
    ----------
    ring:
        The consistent-hashing ring.
    m:
        Number of requests.
    d:
        Probes per request (``d = 1`` reproduces plain consistent hashing).
    capacity_aware:
        When true, peers get integer capacities proportional to their arcs
        (quantised at *resolution*) and the paper's Algorithm 1 decides
        among the probed peers; when false every peer is a unit bin
        (Byers et al.).
    resolution:
        Quantisation for capacity-aware mode; defaults to
        ``max(1000, 10 * n_peers)``.
    seed:
        RNG seed for the request points.
    """
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    rng = make_rng(seed)

    if capacity_aware:
        res = resolution if resolution is not None else max(1000, 10 * ring.n_peers)
        caps = ring.as_bin_array(res).capacities
    else:
        caps = np.ones(ring.n_peers, dtype=np.int64)

    # Request points are uniform on the circle; map every point to its peer.
    # Vectorised searchsorted replicates ring.lookup for a whole matrix.
    points = rng.random((m, d))
    pos = ring.positions
    idx = np.searchsorted(pos, points, side="left")
    idx[idx == pos.size] = 0
    owners = ring._owners[idx]

    counts: list[int] = [0] * ring.n_peers
    tie_u = rng.random(m)
    run_batch(counts, caps.tolist(), owners.astype(np.int64), tie_u, tie_break="max_capacity")

    return RingAllocationResult(
        counts=np.asarray(counts, dtype=np.int64),
        capacities=caps,
        m=m,
        d=d,
        capacity_aware=capacity_aware,
    )
