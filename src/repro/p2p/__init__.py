"""P2P substrate: consistent-hashing rings, Chord overlay, request workloads."""

from .chord import ChordNetwork, ChordNode, LookupResult
from .churn import ChurnEvent, ChurnTrace, run_churn
from .dht import DHT
from .hashing import hash_key, hash_to_unit, point_sequence, splitmix64
from .ring import ConsistentHashRing, RingPeer
from .workload import (
    RingAllocationResult,
    RingEnsembleResult,
    allocate_requests,
    allocate_requests_ensemble,
)

__all__ = [
    "splitmix64",
    "hash_key",
    "hash_to_unit",
    "point_sequence",
    "ConsistentHashRing",
    "RingPeer",
    "ChordNetwork",
    "ChordNode",
    "LookupResult",
    "RingAllocationResult",
    "allocate_requests",
    "RingEnsembleResult",
    "allocate_requests_ensemble",
    "DHT",
    "ChurnEvent",
    "ChurnTrace",
    "run_churn",
]
