"""repro — reproduction of *Balls into Non-uniform Bins*.

Berenbrink, Brinkmann, Friedetzky, Nagel (IPDPS 2010 / JPDC 74(2), 2014).

The package implements the paper's weighted multiple-choice balls-into-bins
model end to end: the greedy capacity-aware allocation protocol
(Algorithm 1), the probability models over heterogeneous bins, the slot-
vector/majorisation analysis machinery, every analytical bound as an
evaluatable function, the motivating P2P (consistent hashing / Chord)
substrate, and one registered experiment per evaluation figure.

Quickstart
----------
>>> from repro import two_class_bins, simulate
>>> bins = two_class_bins(500, 500, small_capacity=1, large_capacity=10)
>>> result = simulate(bins, seed=7)          # m = C balls, d = 2 choices
>>> result.max_load < 3.0
True
"""

from .analysis import load_gap, load_stats, max_load
from .bins import (
    BinArray,
    binomial_random_bins,
    multi_class_bins,
    two_class_bins,
    uniform_bins,
)
from .core import (
    SimulationResult,
    least_loaded_of_all,
    majorizes,
    one_choice,
    simulate,
    standard_greedy,
)
from .experiments import list_experiments, run_experiment
from .sampling import (
    AliasSampler,
    PowerProbability,
    ProportionalProbability,
    ThresholdProbability,
    UniformProbability,
)
from .theory import theorem3_bound

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BinArray",
    "uniform_bins",
    "two_class_bins",
    "multi_class_bins",
    "binomial_random_bins",
    "simulate",
    "SimulationResult",
    "one_choice",
    "standard_greedy",
    "least_loaded_of_all",
    "majorizes",
    "AliasSampler",
    "ProportionalProbability",
    "UniformProbability",
    "PowerProbability",
    "ThresholdProbability",
    "theorem3_bound",
    "load_stats",
    "max_load",
    "load_gap",
    "list_experiments",
    "run_experiment",
]
