"""Result persistence (CSV/JSON) and terminal plotting."""

from .asciiplot import ascii_plot, ascii_table
from .csvio import read_series_csv, write_series_csv
from .jsonio import dump_json, load_json, to_jsonable
from .markdown import result_to_markdown, results_to_report

__all__ = [
    "write_series_csv",
    "read_series_csv",
    "dump_json",
    "load_json",
    "to_jsonable",
    "ascii_plot",
    "ascii_table",
    "result_to_markdown",
    "results_to_report",
]
