"""Result persistence (CSV/JSON), the content-addressed result store, and
terminal plotting."""

from .asciiplot import ascii_plot, ascii_table
from .atomicio import atomic_write
from .benchjson import (
    BENCH_SCHEMA,
    load_bench_json,
    validate_bench_payload,
    write_bench_json,
)
from .csvio import read_series_csv, write_series_csv
from .jsonio import dump_json, load_json, to_jsonable
from .markdown import result_to_markdown, results_to_report
from .store import (
    Checkpointer,
    ResultStore,
    StoredResult,
    StoreStats,
    default_store_root,
    resolve_store,
)

__all__ = [
    "write_series_csv",
    "read_series_csv",
    "dump_json",
    "load_json",
    "to_jsonable",
    "atomic_write",
    "ascii_plot",
    "ascii_table",
    "result_to_markdown",
    "results_to_report",
    "ResultStore",
    "StoredResult",
    "StoreStats",
    "Checkpointer",
    "default_store_root",
    "resolve_store",
    "BENCH_SCHEMA",
    "validate_bench_payload",
    "write_bench_json",
    "load_bench_json",
]
