"""JSON persistence for experiment results with provenance.

Where CSV carries the numeric series, the JSON record carries everything
else: experiment id, parameters, seed entropy, library version, and the
series themselves.  NumPy types are converted transparently.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .atomicio import atomic_write

__all__ = ["dump_json", "load_json", "to_jsonable"]


def to_jsonable(obj):
    """Recursively convert *obj* into JSON-serialisable structures.

    Handles NumPy scalars/arrays, dataclass-like objects exposing
    ``__dict__``, sets, and tuples; raises ``TypeError`` on anything else
    that ``json`` itself would reject.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "__dict__") and not isinstance(obj, type):
        return {k: to_jsonable(v) for k, v in vars(obj).items() if not k.startswith("_")}
    raise TypeError(f"cannot convert {type(obj).__name__} to JSON")


def dump_json(path, payload) -> Path:
    """Write *payload* (via :func:`to_jsonable`) to *path*, pretty-printed.

    The write is atomic (tmp file + rename): readers and concurrent sweep
    workers never observe a torn document.
    """
    p = Path(path)
    with atomic_write(p, "w") as fh:
        json.dump(to_jsonable(payload), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return p


def load_json(path):
    """Load a JSON document written by :func:`dump_json`."""
    with Path(path).open() as fh:
        return json.load(fh)
