"""CSV persistence for experiment series.

Every figure experiment reduces to one or more *series*: named columns over
a shared x-grid.  :func:`write_series_csv` / :func:`read_series_csv`
round-trip that structure through plain CSV so results can be inspected,
re-plotted externally, or diffed between runs.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .atomicio import atomic_write

__all__ = ["write_series_csv", "read_series_csv"]


def write_series_csv(path, x_name: str, x_values, series: dict) -> Path:
    """Write columns ``x_name, *series.keys()`` to *path*.

    All series must have the same length as ``x_values``.  Values are
    written with full float repr (lossless round-trip).  The write is
    atomic (tmp file + rename), so concurrent sweep workers can never leave
    a torn CSV behind.
    """
    x = np.asarray(x_values)
    if x.ndim != 1:
        raise ValueError(f"x_values must be 1-D, got shape {x.shape}")
    cols = {}
    for name, values in series.items():
        arr = np.asarray(values)
        if arr.shape != x.shape:
            raise ValueError(
                f"series {name!r} has shape {arr.shape}, expected {x.shape}"
            )
        cols[name] = arr
    p = Path(path)
    with atomic_write(p, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_name, *cols.keys()])
        for i in range(x.size):
            writer.writerow([repr(_py(x[i])), *(repr(_py(cols[name][i])) for name in cols)])
    return p


def _py(value):
    """Convert NumPy scalars to plain Python for clean repr round-trips."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def read_series_csv(path) -> tuple[str, np.ndarray, dict[str, np.ndarray]]:
    """Read a file written by :func:`write_series_csv`.

    Returns ``(x_name, x_values, {series_name: values})``; all values are
    parsed as floats.
    """
    p = Path(path)
    with p.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if not header:
            raise ValueError(f"{p}: empty CSV")
        rows = [[float(cell) for cell in row] for row in reader if row]
    data = np.asarray(rows, dtype=np.float64) if rows else np.empty((0, len(header)))
    x_name = header[0]
    x = data[:, 0] if data.size else np.empty(0)
    series = {
        name: (data[:, j + 1] if data.size else np.empty(0))
        for j, name in enumerate(header[1:])
    }
    return x_name, x, series
