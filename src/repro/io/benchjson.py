"""Machine-readable benchmark records (``BENCH_ensemble.json``).

The quick-mode benchmark run in ``scripts/ci.sh`` emits one JSON document
at the repository root so PR-over-PR perf regressions become diffable:
every floor test contributes timing *rows* (config, R, engine, wavefront
mode, compiled-tier thread budget, machine core count, seconds) and
*speedup* entries (the measured ratio next to its pinned floor).  The
schema is versioned and validated both by the unit tests
(``tests/io/test_benchjson.py``) and by ``scripts/ci.sh`` right after the
file is produced.

Schema history: ``repro.bench_ensemble/1`` rows carried (config, R,
engine, wavefront, seconds); ``/2`` adds ``threads`` (the compiled-tier
thread budget the timing ran under) and ``cpu_count`` (so parallel
timings stay interpretable across machines).  :func:`load_bench_json`
still reads ``/1`` documents — PR-over-PR diffing must be able to open
the previous PR's committed file — normalising their rows to the current
layout (``threads = 1``, ``cpu_count = None``); :func:`write_bench_json`
always writes the current schema.

The document intentionally keeps raw seconds: absolute numbers drift with
the machine, but the committed ratios and the row structure make "which
kernel regressed" a one-line diff instead of an archaeology session.
"""

from __future__ import annotations

import json
from typing import Any

from .atomicio import atomic_write

__all__ = [
    "BENCH_SCHEMA",
    "LEGACY_BENCH_SCHEMAS",
    "SERVICE_BENCH_SCHEMA",
    "validate_bench_payload",
    "write_bench_json",
    "load_bench_json",
    "validate_service_bench_payload",
    "write_service_bench_json",
    "load_service_bench_json",
]

#: Schema identifier; bump when the document layout changes.
BENCH_SCHEMA = "repro.bench_ensemble/2"

#: Older schemas :func:`load_bench_json` still reads (normalised on load).
LEGACY_BENCH_SCHEMAS = ("repro.bench_ensemble/1",)

_ROW_KEYS = {"config": str, "R": int, "engine": str, "wavefront": str,
             "seconds": float, "threads": int, "cpu_count": int}
_LEGACY_ROW_KEYS = {"config": str, "R": int, "engine": str, "wavefront": str,
                    "seconds": float}
_SPEEDUP_KEYS = {"config": str, "R": int, "kind": str, "ratio": float,
                 "floor": float}


def _check_fields(entry: dict, spec: dict, where: str) -> None:
    if not isinstance(entry, dict):
        raise ValueError(f"{where}: expected an object, got {type(entry).__name__}")
    missing = set(spec) - set(entry)
    if missing:
        raise ValueError(f"{where}: missing fields {sorted(missing)}")
    extra = set(entry) - set(spec)
    if extra:
        raise ValueError(f"{where}: unknown fields {sorted(extra)}")
    for key, typ in spec.items():
        value = entry[key]
        if typ is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{where}.{key}: expected a number, got {value!r}")
        elif not isinstance(value, typ) or isinstance(value, bool):
            raise ValueError(
                f"{where}.{key}: expected {typ.__name__}, got {value!r}"
            )


def validate_bench_payload(payload: Any) -> dict:
    """Validate a benchmark document against :data:`BENCH_SCHEMA` (or a
    legacy schema from :data:`LEGACY_BENCH_SCHEMAS`, with the layout that
    schema defined).

    Returns the payload unchanged; raises ``ValueError`` with the offending
    path on any structural problem.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be an object, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema == BENCH_SCHEMA:
        row_keys = _ROW_KEYS
    elif schema in LEGACY_BENCH_SCHEMAS:
        row_keys = _LEGACY_ROW_KEYS
    else:
        raise ValueError(
            f"schema mismatch: expected {BENCH_SCHEMA!r} (or a legacy schema "
            f"{LEGACY_BENCH_SCHEMAS}), got {schema!r}"
        )
    if not isinstance(payload.get("quick"), bool):
        raise ValueError("quick: expected a boolean")
    rows = payload.get("rows")
    speedups = payload.get("speedups")
    if not isinstance(rows, list) or not isinstance(speedups, list):
        raise ValueError("rows and speedups must be lists")
    for i, row in enumerate(rows):
        _check_fields(row, row_keys, f"rows[{i}]")
        if row["wavefront"] not in ("auto", "on", "off", "n/a"):
            raise ValueError(f"rows[{i}].wavefront: {row['wavefront']!r}")
        if row["seconds"] <= 0:
            raise ValueError(f"rows[{i}].seconds: must be positive")
        if schema == BENCH_SCHEMA:
            if row["threads"] < 1:
                raise ValueError(f"rows[{i}].threads: must be >= 1")
            if row["cpu_count"] < 1:
                raise ValueError(f"rows[{i}].cpu_count: must be >= 1")
    for i, s in enumerate(speedups):
        _check_fields(s, _SPEEDUP_KEYS, f"speedups[{i}]")
        if s["ratio"] <= 0 or s["floor"] <= 0:
            raise ValueError(f"speedups[{i}]: ratio and floor must be positive")
    unknown = set(payload) - {"schema", "quick", "rows", "speedups"}
    if unknown:
        raise ValueError(f"unknown top-level fields {sorted(unknown)}")
    return payload


def write_bench_json(path, *, quick: bool, rows, speedups) -> dict:
    """Validate and atomically write a benchmark document (always at the
    current :data:`BENCH_SCHEMA`); returns it."""
    payload = {
        "schema": BENCH_SCHEMA,
        "quick": bool(quick),
        "rows": list(rows),
        "speedups": list(speedups),
    }
    validate_bench_payload(payload)
    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


# -- allocation-service benchmark records (BENCH_service.json) ------------------

#: Schema identifier for the service replay benchmark document.
SERVICE_BENCH_SCHEMA = "repro.bench_service/1"

_SERVICE_TRACE_KEYS = {"requests": int, "objects": int, "users": int,
                       "rate": float, "seed": int, "digest": str}
_SERVICE_ROW_KEYS = {"d": int, "refresh_every": int, "peers": int,
                     "max_load": int, "mean_load": float,
                     "max_over_mean": float, "p50_ms": float, "p99_ms": float,
                     "seconds": float, "placement_digest": str}
_SERVICE_COMPARISON_KEYS = {"d": int, "max_load_ratio_vs_d1": float}


def validate_service_bench_payload(payload: Any) -> dict:
    """Validate a service benchmark document against
    :data:`SERVICE_BENCH_SCHEMA`.

    The document records one fixed replayed trace, one row per ``d``
    (latency percentiles are observability, so only positivity and
    ``p50 <= p99`` are checked — absolute values drift with the machine),
    and the max-load ratios against the ``d = 1`` consistent-hashing
    baseline, which are the committed comparison.  Returns the payload
    unchanged; raises ``ValueError`` with the offending path otherwise.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be an object, got {type(payload).__name__}")
    if payload.get("schema") != SERVICE_BENCH_SCHEMA:
        raise ValueError(
            f"schema mismatch: expected {SERVICE_BENCH_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("quick"), bool):
        raise ValueError("quick: expected a boolean")
    _check_fields(payload.get("trace"), _SERVICE_TRACE_KEYS, "trace")
    rows = payload.get("rows")
    comparisons = payload.get("comparisons")
    if not isinstance(rows, list) or not isinstance(comparisons, list):
        raise ValueError("rows and comparisons must be lists")
    if not rows:
        raise ValueError("rows: must not be empty")
    for i, row in enumerate(rows):
        _check_fields(row, _SERVICE_ROW_KEYS, f"rows[{i}]")
        if row["d"] < 1:
            raise ValueError(f"rows[{i}].d: must be >= 1")
        if row["max_over_mean"] < 1.0 and row["max_load"] > 0:
            raise ValueError(f"rows[{i}].max_over_mean: must be >= 1")
        if row["seconds"] <= 0:
            raise ValueError(f"rows[{i}].seconds: must be positive")
        if not 0.0 <= row["p50_ms"] <= row["p99_ms"]:
            raise ValueError(f"rows[{i}]: need 0 <= p50_ms <= p99_ms")
    for i, c in enumerate(comparisons):
        _check_fields(c, _SERVICE_COMPARISON_KEYS, f"comparisons[{i}]")
        if c["max_load_ratio_vs_d1"] <= 0:
            raise ValueError(
                f"comparisons[{i}].max_load_ratio_vs_d1: must be positive"
            )
    unknown = set(payload) - {"schema", "quick", "trace", "rows", "comparisons"}
    if unknown:
        raise ValueError(f"unknown top-level fields {sorted(unknown)}")
    return payload


def write_service_bench_json(path, *, quick: bool, trace, rows, comparisons) -> dict:
    """Validate and atomically write a service benchmark document."""
    payload = {
        "schema": SERVICE_BENCH_SCHEMA,
        "quick": bool(quick),
        "trace": dict(trace),
        "rows": list(rows),
        "comparisons": list(comparisons),
    }
    validate_service_bench_payload(payload)
    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_service_bench_json(path) -> dict:
    """Load and validate a service benchmark document."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return validate_service_bench_payload(payload)


def load_bench_json(path) -> dict:
    """Load and validate a benchmark document.

    Legacy-schema documents (see :data:`LEGACY_BENCH_SCHEMAS`) are
    accepted and normalised to the current row layout — ``threads`` is 1
    (every pre-/2 timing ran the serial kernels) and ``cpu_count`` is
    ``None`` (unrecorded; distinguishable from any real count) — with the
    original ``schema`` field preserved so callers can tell what was
    actually on disk.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_bench_payload(payload)
    if payload["schema"] in LEGACY_BENCH_SCHEMAS:
        for row in payload["rows"]:
            row.setdefault("threads", 1)
            row.setdefault("cpu_count", None)
    return payload
