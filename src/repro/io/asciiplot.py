"""Terminal line plots.

The original figures are gnuplot PNGs; offline we render the same series as
ASCII so ``repro run figNN`` gives immediate visual feedback.  One canvas,
multiple series (distinct glyphs), linear axes with printed ranges.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ascii_plot", "ascii_table"]

_GLYPHS = "*+x#o@%&"


def ascii_plot(
    x,
    series: dict,
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``series`` (name → y-values over shared ``x``) as ASCII art.

    Returns a multi-line string: title, canvas with y-range annotations, an
    x-range footer, and a glyph legend.
    """
    xa = np.asarray(x, dtype=np.float64)
    if xa.ndim != 1 or xa.size == 0:
        raise ValueError("x must be a non-empty 1-D sequence")
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("canvas too small (need width >= 16, height >= 4)")

    arrays = {}
    for name, ys in series.items():
        arr = np.asarray(ys, dtype=np.float64)
        if arr.shape != xa.shape:
            raise ValueError(f"series {name!r} has shape {arr.shape}, expected {xa.shape}")
        arrays[name] = arr

    finite = np.concatenate([a[np.isfinite(a)] for a in arrays.values()])
    if finite.size == 0:
        raise ValueError("all series values are non-finite")
    y_min = float(finite.min())
    y_max = float(finite.max())
    if math.isclose(y_min, y_max):
        pad = abs(y_min) * 0.1 + 0.5
        y_min, y_max = y_min - pad, y_max + pad
    x_min = float(xa.min())
    x_max = float(xa.max())
    x_span = x_max - x_min if x_max > x_min else 1.0
    y_span = y_max - y_min

    canvas = [[" "] * width for _ in range(height)]
    for glyph, (name, ys) in zip(_GLYPHS * (1 + len(arrays) // len(_GLYPHS)), arrays.items()):
        for xv, yv in zip(xa, ys):
            if not (np.isfinite(xv) and np.isfinite(yv)):
                continue
            col = int(round((xv - x_min) / x_span * (width - 1)))
            row = int(round((y_max - yv) / y_span * (height - 1)))
            canvas[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    label_w = max(len(f"{y_max:.3g}"), len(f"{y_min:.3g}"))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = f"{y_max:>{label_w}.3g} |"
        elif i == height - 1:
            prefix = f"{y_min:>{label_w}.3g} |"
        else:
            prefix = " " * label_w + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    footer = f"{' ' * label_w}  {x_min:.4g}{' ' * max(width - 24, 1)}{x_max:.4g}"
    lines.append(footer)
    if x_label or y_label:
        lines.append(f"x: {x_label}    y: {y_label}".rstrip())
    legend = "   ".join(
        f"{glyph}={name}"
        for glyph, name in zip(_GLYPHS * (1 + len(arrays) // len(_GLYPHS)), arrays)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_table(headers, rows, *, float_format: str = "{:.4f}") -> str:
    """Minimal fixed-width table for printing experiment rows."""
    rendered = [[str(h) for h in headers]]
    for row in rows:
        rendered.append(
            [
                float_format.format(v) if isinstance(v, float) else str(v)
                for v in row
            ]
        )
    widths = [max(len(r[j]) for r in rendered) for j in range(len(headers))]
    lines = []
    for i, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
