"""Content-addressed result store with resume checkpoints.

The store is the middle stage of the run pipeline (RunRequest → **store** →
resumable execution): results are persisted under the request's cache key
(:meth:`repro.experiments.request.RunRequest.cache_key`), so a repeated run
is a lookup instead of a recomputation, and a long ensemble run parks its
merged-so-far reducer state here at block boundaries so a killed run
restarts from the last checkpoint.

Layout (under one root directory)::

    <root>/results/<key>.npz          one self-contained entry per key
    <root>/checkpoints/<key>/slotNNNN.pkl   in-progress block checkpoints

Each result entry is a **single** ``.npz`` file — series arrays exactly as
computed (NaN padding and dtypes included, so the round-trip is
bit-identical) plus one JSON metadata member carrying the request, the
experiment metadata, and environment provenance.  All writes go through
:func:`repro.io.atomicio.atomic_write` (tmp file + ``os.replace``), so
concurrent sweep workers can never expose a torn entry.

The root location is the ``REPRO_STORE`` environment variable / ``--store``
CLI knob; see :func:`resolve_store`.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import re
import shutil
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .atomicio import atomic_write
from .jsonio import to_jsonable

__all__ = [
    "ResultStore",
    "StoredResult",
    "StoreStats",
    "Checkpointer",
    "CheckpointSlot",
    "default_store_root",
    "resolve_store",
    "STORE_ENV_VAR",
]

#: Environment variable naming the default store root (the ``--store`` knob).
STORE_ENV_VAR = "REPRO_STORE"

#: Fallback root when neither ``--store DIR`` nor ``REPRO_STORE`` is given.
DEFAULT_STORE_DIRNAME = ".repro-store"

#: On-disk format version; bump on incompatible layout changes (old entries
#: are then treated as misses, never misread).
FORMAT_VERSION = 1

_META_MEMBER = "meta"
_X_MEMBER = "x_values"
_SERIES_PREFIX = "series:"


def default_store_root() -> Path:
    """The store root the CLI knob resolves to: ``$REPRO_STORE`` or
    ``./.repro-store``."""
    return Path(os.environ.get(STORE_ENV_VAR) or DEFAULT_STORE_DIRNAME)


def resolve_store(store) -> "ResultStore | None":
    """Normalise a store argument: ``None`` (no caching), an existing
    :class:`ResultStore`, ``True`` (the :func:`default_store_root` knob), or
    a path."""
    if store is None:
        return None
    if isinstance(store, ResultStore):
        return store
    if store is True:
        return ResultStore(default_store_root())
    return ResultStore(store)


@dataclass(frozen=True)
class StoreStats:
    """Aggregate store state plus this instance's hit/miss counters."""

    root: Path
    entries: int
    total_bytes: int
    hits: int
    misses: int


@dataclass(frozen=True)
class StoredResult:
    """One store entry: the result plus what produced it."""

    key: str
    result: "object"  # ExperimentResult (lazy import, see _result_from_npz)
    request: dict
    provenance: dict


class CheckpointSlot:
    """Persistence for one ``run_ensemble_reduced`` call's resume state.

    The executor saves ``(reducer, blocks_done)`` under a fingerprint of the
    call's identity (task, repetitions, block layout, seed, kwargs); a
    checkpoint whose fingerprint does not match the requesting call is
    ignored, so changed experiment internals start fresh instead of
    resuming unsoundly.  State is pickled (the streaming reducers round-trip
    bit-exactly) and written atomically.
    """

    def __init__(self, path: Path):
        self.path = Path(path)

    def load(self, fingerprint: str):
        """Return ``(reducer, blocks_done, monitor)`` or ``None``.

        ``monitor`` is the early-stop monitor state saved alongside the
        reducer for adaptive runs (``None`` for fixed-budget runs and for
        checkpoints written before the adaptive-precision layer existed).
        """
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:  # torn/foreign file: treat as no checkpoint
            return None
        if not isinstance(payload, dict) or payload.get("fingerprint") != fingerprint:
            return None
        return payload["reducer"], payload["blocks_done"], payload.get("monitor")

    def save(self, reducer, blocks_done: int, fingerprint: str, monitor=None) -> None:
        """Atomically persist the merged-so-far state after a block slab.

        ``monitor`` (optional, picklable) carries the sequential-stopping
        monitor's state for adaptive runs, so a resumed run replays the
        same continue/stop decisions instead of re-observing lost blocks.
        """
        blob = pickle.dumps(
            {
                "fingerprint": fingerprint,
                "blocks_done": int(blocks_done),
                "reducer": reducer,
                "monitor": monitor,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with atomic_write(self.path, "wb") as fh:
            fh.write(blob)


#: Slot file names: ``slot<digits>.pkl``.  The digit run is parsed
#: numerically everywhere — ordering never leans on the zero padding, so
#: legacy 4-digit names and the current 8-digit ones interoperate.
_SLOT_NAME_RE = re.compile(r"slot(\d+)\.pkl")

#: Zero-padding width for newly created slot files.  Eight digits keep the
#: names lexicographically ordered up to 10**8 slots; the old 4-digit width
#: broke at 10,000 (``slot10000`` sorted *before* ``slot9999``), which is
#: why discovery now parses indices instead of trusting name order.
_SLOT_DIGITS = 8


class Checkpointer:
    """Slot provider for one run's checkpoints (one directory per cache key).

    ``slot()`` hands out auto-numbered slots in call order; an experiment's
    ``run_ensemble_reduced`` call sequence is deterministic, so slot ``i``
    always belongs to the same logical sub-run on every attempt — which is
    exactly why ``_next`` starts at 0 on every instance (a resumed attempt
    must claim the same indices in the same order).  Construction rescans
    the directory so slot ``i`` resolves to its existing file under *any*
    historical padding width; new files use the current width.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self._next = 0
        # index -> existing path (legacy 4-digit names included), discovered
        # by numeric parse so slot 10000 never sorts into the wrong place.
        self._existing: dict[int, Path] = {}
        if self.directory.is_dir():
            for p in self.directory.glob("slot*.pkl"):
                m = _SLOT_NAME_RE.fullmatch(p.name)
                if m is None:
                    continue
                index = int(m.group(1))
                canonical = len(m.group(1)) == _SLOT_DIGITS
                if canonical or index not in self._existing:
                    self._existing[index] = p

    def slot(self) -> CheckpointSlot:
        """Claim the next slot (numbered in deterministic call order).

        Resolves to the slot's existing file when one was discovered at
        construction (whatever padding wrote it), else to a fresh
        current-width name.
        """
        index = self._next
        self._next += 1
        path = self._existing.get(
            index, self.directory / f"slot{index:0{_SLOT_DIGITS}d}.pkl"
        )
        return CheckpointSlot(path)

    def slot_indices(self) -> list[int]:
        """Indices of the slot files discovered at construction, in numeric
        order (the order the deterministic call sequence claims them)."""
        return sorted(self._existing)

    def has_state(self) -> bool:
        """Whether any checkpoint file exists for this run."""
        return self.directory.is_dir() and any(self.directory.glob("slot*.pkl"))

    def clear(self) -> None:
        """Drop all checkpoints (called once the final result is stored)."""
        shutil.rmtree(self.directory, ignore_errors=True)


class ResultStore:
    """Content-addressed persistence for :class:`ExperimentResult` objects.

    Keys are the hex digests from :meth:`RunRequest.cache_key`; ``get`` /
    ``put`` / ``contains`` / ``evict`` / ``stats`` are the whole surface.
    ``hits``/``misses`` count this instance's ``get`` outcomes so callers
    (the sweep front end, the CI smoke) can report cache behaviour.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- paths -----------------------------------------------------------

    def _results_dir(self) -> Path:
        return self.root / "results"

    def _checkpoints_dir(self) -> Path:
        return self.root / "checkpoints"

    def result_path(self, key: str) -> Path:
        """Where the entry for *key* lives (whether or not it exists)."""
        return self._results_dir() / f"{key}.npz"

    # -- core API --------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether an entry for *key* exists (does not touch the counters)."""
        return self.result_path(key).is_file()

    def get(self, key: str) -> StoredResult | None:
        """Load the entry for *key*; ``None`` (and a counted miss) if absent.

        The returned result's series and x-grid are bit-identical to what
        ``put`` received (the arrays round-trip through ``.npz`` untouched,
        NaN padding included).

        An *unreadable* entry — zero-byte, truncated, or a foreign file
        that is not a store ``.npz`` at all (a crashed pre-fsync writer, a
        partial copy) — is treated as a miss, not an error: the bad file is
        quarantined out of the way (renamed so it no longer matches the
        entry glob) and the caller recomputes, instead of one torn file
        poisoning every subsequent sweep over the store.
        """
        path = self.result_path(key)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                meta = json.loads(str(npz[_META_MEMBER][()]))
                if meta.get("format_version") != FORMAT_VERSION:
                    self.misses += 1
                    return None
                x_values = npz[_X_MEMBER]
                series = {
                    name[len(_SERIES_PREFIX):]: npz[name]
                    for name in npz.files
                    if name.startswith(_SERIES_PREFIX)
                }
            result = _result_from_meta(meta, x_values, series)
        except Exception:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return StoredResult(
            key=key,
            result=result,
            request=meta.get("request") or {},
            provenance=meta.get("provenance") or {},
        )

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside (best effort, race-tolerant).

        The quarantine name appends ``.corrupt``, so ``keys()``/``stats()``
        (which glob ``*.npz``) and ``contains``/``get`` no longer see it,
        while the bytes stay on disk for post-mortem inspection.  A
        concurrent ``put`` may have already replaced (or a concurrent
        ``get`` already quarantined) the path — losing that race is fine.
        """
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            path.unlink(missing_ok=True)

    def put(self, key: str, result, *, request=None) -> Path:
        """Persist *result* under *key* (atomic; overwrites any old entry).

        ``request`` (a :class:`RunRequest` or its payload dict) is stored
        alongside for provenance.  Completed results supersede resume state,
        so the key's checkpoints are dropped.
        """
        request_payload = request.to_payload() if hasattr(request, "to_payload") else request
        meta = {
            "format_version": FORMAT_VERSION,
            "key": key,
            "experiment_id": result.experiment_id,
            "title": result.title,
            "x_name": result.x_name,
            "series_names": list(result.series),
            "parameters": to_jsonable(result.parameters),
            "extra": to_jsonable(result.extra),
            "request": to_jsonable(request_payload) if request_payload else None,
            "provenance": _environment_provenance(),
        }
        arrays = {_META_MEMBER: json.dumps(meta, sort_keys=True), _X_MEMBER: result.x_values}
        for name, values in result.series.items():
            arrays[f"{_SERIES_PREFIX}{name}"] = values
        path = self.result_path(key)
        with atomic_write(path, "wb") as fh:
            np.savez(fh, **arrays)
        self.clear_checkpoints(key)
        return path

    def evict(self, key: str) -> bool:
        """Remove the entry (and any checkpoints) for *key*; report if an
        entry existed."""
        path = self.result_path(key)
        existed = path.is_file()
        path.unlink(missing_ok=True)
        self.clear_checkpoints(key)
        return existed

    def keys(self) -> list[str]:
        """All stored keys (sorted)."""
        if not self._results_dir().is_dir():
            return []
        return sorted(p.stem for p in self._results_dir().glob("*.npz"))

    def stats(self) -> StoreStats:
        """Entry count, on-disk bytes, and this instance's hit/miss tally.

        Safe against concurrent eviction: an entry that vanishes between
        the directory listing and its ``stat`` is simply skipped (the
        listing is a live snapshot, not a lock).
        """
        entries = 0
        total = 0
        if self._results_dir().is_dir():
            for p in self._results_dir().glob("*.npz"):
                try:
                    size = p.stat().st_size
                except OSError:  # evicted (or broken link) mid-iteration
                    continue
                entries += 1
                total += size
        return StoreStats(
            root=self.root,
            entries=entries,
            total_bytes=total,
            hits=self.hits,
            misses=self.misses,
        )

    # -- fabric scratch ---------------------------------------------------

    def fabric_dir(self, token: str) -> Path:
        """Scratch namespace for one fabric work set (see ``runtime.fabric``).

        The sweep fabric parks per-block reducer state and its work spec
        under ``<root>/fabric/<token>/`` — *token* is a content hash of the
        run's checkpoint fingerprint, so a restarted broker finds exactly
        its own parked blocks and two different runs can never share state.
        Files inside are ordinary :class:`CheckpointSlot` pickles written
        through :func:`atomic_write`, so concurrent workers are safe by the
        same argument as result entries.
        """
        return self.root / "fabric" / token

    def clear_fabric(self, token: str) -> None:
        """Drop one fabric work set's scratch state (post-merge cleanup)."""
        shutil.rmtree(self.fabric_dir(token), ignore_errors=True)

    # -- resume checkpoints ----------------------------------------------

    def checkpointer(self, key: str) -> Checkpointer:
        """The checkpoint namespace for one run (see :class:`Checkpointer`)."""
        return Checkpointer(self._checkpoints_dir() / key)

    def has_checkpoints(self, key: str) -> bool:
        """Whether resume state exists for *key*."""
        return self.checkpointer(key).has_state()

    def clear_checkpoints(self, key: str) -> None:
        """Drop resume state for *key*."""
        self.checkpointer(key).clear()


def _environment_provenance() -> dict:
    """What produced a store entry (for audits, not for the cache key)."""
    try:
        from .. import __version__ as repro_version
    except Exception:  # pragma: no cover - package metadata missing
        repro_version = "unknown"
    return {
        "repro": repro_version,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "created_unix": int(time.time()),
    }


def _result_from_meta(meta: dict, x_values, series):
    """Rebuild an ``ExperimentResult`` from a store entry.

    Imported lazily: ``experiments.base`` already imports :mod:`repro.io`
    submodules, and the store must stay importable on its own.
    """
    from ..experiments.base import ExperimentResult

    return ExperimentResult(
        experiment_id=meta["experiment_id"],
        title=meta["title"],
        x_name=meta["x_name"],
        x_values=x_values,
        series={name: series[name] for name in meta["series_names"]},
        parameters=meta.get("parameters") or {},
        extra=meta.get("extra") or {},
    )
