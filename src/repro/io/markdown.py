"""Markdown rendering of experiment results.

Produces the building blocks of EXPERIMENTS.md-style reports directly from
:class:`~repro.experiments.base.ExperimentResult` objects, so a full run
(`repro.experiments.runner.run_all`) can be turned into a reviewable
document without manual transcription.
"""

from __future__ import annotations

import numpy as np

__all__ = ["result_to_markdown", "results_to_report"]


def _fmt(value: float) -> str:
    if not np.isfinite(value):
        return "—"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def result_to_markdown(result, *, max_rows: int = 10) -> str:
    """One experiment as a markdown section: parameters + series table."""
    lines = [f"### {result.experiment_id} — {result.title}", ""]
    if result.parameters:
        params = ", ".join(f"{k}={v}" for k, v in sorted(result.parameters.items()))
        lines += [f"*Parameters:* {params}", ""]

    header = [result.x_name, *result.series.keys()]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    n = result.x_values.size
    if n <= max_rows:
        idx = list(range(n))
    else:
        half = max_rows // 2
        idx = list(range(half)) + [-1] + list(range(n - half, n))
    for i in idx:
        if i == -1:
            lines.append("| … |" + " … |" * len(result.series))
            continue
        row = [_fmt(float(result.x_values[i]))]
        row += [_fmt(float(result.series[s][i])) for s in result.series]
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")

    notable = {k: v for k, v in result.extra.items() if k != "wall_seconds"}
    if notable:
        lines.append("*Notes:*")
        for key, value in sorted(notable.items()):
            lines.append(f"- `{key}`: {value}")
        lines.append("")
    return "\n".join(lines)


def results_to_report(results: dict, *, title: str = "Experiment report") -> str:
    """A full markdown report over ``{experiment_id: ExperimentResult}``."""
    lines = [f"# {title}", ""]
    summary_header = ["experiment", "series", "min", "max", "first", "last"]
    lines.append("| " + " | ".join(summary_header) + " |")
    lines.append("|" + "---|" * len(summary_header))
    for fid in sorted(results):
        for name, lo, hi, first, last in results[fid].summary_rows():
            lines.append(
                f"| {fid} | {name} | {_fmt(lo)} | {_fmt(hi)} | {_fmt(first)} | {_fmt(last)} |"
            )
    lines.append("")
    for fid in sorted(results):
        lines.append(result_to_markdown(results[fid]))
    return "\n".join(lines)
