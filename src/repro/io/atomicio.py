"""Atomic file writes (tmp file + ``os.replace``).

Every artifact the project persists — result CSV/JSON, store entries,
resume checkpoints — goes through :func:`atomic_write`, so a reader (or a
concurrent sweep worker) can never observe a torn file: the payload is
written to a process-unique ``*.tmp-<pid>`` sibling and renamed into place
only once the write completed.  ``os.replace`` is atomic on POSIX and
Windows for same-directory renames.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

__all__ = ["atomic_write"]


@contextmanager
def atomic_write(path, mode: str = "w", **open_kwargs):
    """Context manager yielding a file handle whose content appears at
    *path* atomically on successful exit.

    The parent directory is created if missing.  On an exception inside the
    block the temporary file is removed and *path* is left untouched (its
    previous content, if any, survives).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, mode, **open_kwargs) as fh:
            yield fh
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
