"""Atomic file writes (tmp file + ``os.replace``).

Every artifact the project persists — result CSV/JSON, store entries,
resume checkpoints — goes through :func:`atomic_write`, so a reader (or a
concurrent sweep worker) can never observe a torn file: the payload is
written to a call-unique ``*.tmp-<pid>-<seq>`` sibling, flushed and fsynced,
and renamed into place only once the write completed.  ``os.replace`` is
atomic on POSIX and Windows for same-directory renames.

The temp suffix is unique per *call*, not just per process: two threads (or
a re-entrant writer) targeting the same path each get their own sibling, so
neither can truncate the other's half-written payload or unlink a file the
other just published.  Last replace wins, both outcomes are whole files.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from pathlib import Path

__all__ = ["atomic_write"]

#: Per-process monotonic suffix: with the pid this makes every concurrently
#: live temp name unique, across threads and across processes sharing the
#: directory.  ``itertools.count`` increments under the GIL, so no lock.
_tmp_counter = itertools.count()


@contextmanager
def atomic_write(path, mode: str = "w", **open_kwargs):
    """Context manager yielding a file handle whose content appears at
    *path* atomically on successful exit.

    The parent directory is created if missing.  The handle is flushed and
    fsynced before the rename, so a crash straddling the replace can leave
    the old content or the new — never an empty or truncated file.  On an
    exception inside the block the temporary file is removed and *path* is
    left untouched (its previous content, if any, survives).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.tmp-{os.getpid()}-{next(_tmp_counter)}"
    )
    try:
        with open(tmp, mode, **open_kwargs) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        _replace_into_place(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


#: Bounded attempts for the final rename when the parent directory is being
#: removed concurrently (``Checkpointer.clear`` races a late ``slot.save``
#: from another process — the fabric's steady state).
_REPLACE_ATTEMPTS = 5


def _replace_into_place(tmp: Path, path: Path) -> None:
    """``os.replace`` that survives a concurrently vanishing parent dir.

    A same-directory rename raising ``FileNotFoundError`` means the
    directory itself disappeared between the mkdir and the replace — a
    concurrent ``shutil.rmtree`` of the namespace (``Checkpointer.clear``
    racing a late ``slot.save`` from another process, the fabric's steady
    state).  Previously this escaped as a crash.  Recovery: re-create the
    parent and retry while the temp file survived; if the rmtree swept the
    temp file too, the concurrent *clear* won the race — the state being
    saved was just declared obsolete by whoever cleared it, so the write is
    dropped silently (the old pre-fix behaviour was a crash, never a
    completed write, so no caller can be relying on it landing).  Bounded
    so a pathological delete loop fails loudly rather than spinning.
    """
    for attempt in range(_REPLACE_ATTEMPTS):
        try:
            os.replace(tmp, path)
            return
        except FileNotFoundError:
            if not tmp.exists():  # swept by the concurrent rmtree: clear wins
                return
            if attempt == _REPLACE_ATTEMPTS - 1:
                raise
            path.parent.mkdir(parents=True, exist_ok=True)
