"""Storage-cluster substrate: disks, objects, placement strategies, metrics."""

from .cluster import Cluster, Disk
from .metrics import PlacementReport, evaluate_placement
from .objects import ObjectSet, lognormal_objects, uniform_objects, unit_objects
from .placement import (
    GreedyTwoChoice,
    LeastLoaded,
    PlacementStrategy,
    RoundRobinBySlots,
    SingleChoice,
)
from .simulator import (
    ExpansionStudy,
    StrategyComparison,
    compare_strategies,
    expansion_study,
)

__all__ = [
    "Disk",
    "Cluster",
    "ObjectSet",
    "unit_objects",
    "uniform_objects",
    "lognormal_objects",
    "PlacementStrategy",
    "GreedyTwoChoice",
    "SingleChoice",
    "RoundRobinBySlots",
    "LeastLoaded",
    "PlacementReport",
    "evaluate_placement",
    "StrategyComparison",
    "compare_strategies",
    "ExpansionStudy",
    "expansion_study",
]
