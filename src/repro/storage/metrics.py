"""Cluster-level imbalance metrics.

Two views of an assignment, matching the two resources a storage operator
balances:

* **fill** — stored bytes per unit capacity (the paper's load `m_i / c_i`
  generalised to sizes);
* **read load** — expected read traffic per unit bandwidth, under the
  object popularity distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cluster import Cluster
from .objects import ObjectSet

__all__ = ["PlacementReport", "evaluate_placement"]


@dataclass(frozen=True)
class PlacementReport:
    """Imbalance metrics of one placement."""

    fill: np.ndarray
    read_load: np.ndarray
    stored_mass: np.ndarray
    objects_per_disk: np.ndarray
    total_capacity: float
    bandwidths: np.ndarray

    @property
    def max_fill(self) -> float:
        """Maximum bytes-per-capacity over disks (the paper's ℓ_max)."""
        return float(self.fill.max())

    @property
    def average_fill(self) -> float:
        """Total mass over total capacity — the balanced optimum."""
        return float(self.stored_mass.sum() / self.total_capacity)

    @property
    def fill_imbalance(self) -> float:
        """Max fill over mean fill (1.0 = perfect)."""
        mean = self.fill.mean()
        return float(self.fill.max() / mean) if mean > 0 else 0.0

    @property
    def max_read_load(self) -> float:
        """Maximum popularity-weighted traffic per unit bandwidth."""
        return float(self.read_load.max())

    @property
    def read_imbalance(self) -> float:
        """Max read load over the bandwidth-weighted ideal share.

        Disk ``i``'s fair share of the total read traffic is
        ``bandwidth_i / Σ bandwidth``; at that share every disk's traffic
        per unit bandwidth equals ``Σ popularity / Σ bandwidth``, which is
        the denominator here.  A fast disk legitimately carrying
        proportionally more raw traffic therefore scores 1.0, not
        imbalance.
        """
        traffic = self.read_load * self.bandwidths
        total = traffic.sum()
        if total <= 0:
            return 0.0
        ideal = total / self.bandwidths.sum()
        return float(self.read_load.max() / ideal)


def evaluate_placement(
    assignment,
    objects: ObjectSet,
    cluster: Cluster,
) -> PlacementReport:
    """Compute fill and read-load metrics for *assignment*.

    ``assignment[k]`` is the disk holding object ``k``.  Read load of disk
    ``i`` is ``Σ_{k on i} popularity_k / bandwidth_i`` — the expected share
    of read traffic normalised by the disk's service rate.
    """
    a = np.asarray(assignment, dtype=np.int64)
    if a.shape != (objects.count,):
        raise ValueError(
            f"assignment has shape {a.shape}, expected ({objects.count},)"
        )
    n = cluster.n_disks
    if a.size and (a.min() < 0 or a.max() >= n):
        raise ValueError("assignment references disks outside the cluster")

    caps = cluster.capacities().astype(np.float64)
    bws = cluster.bandwidths()

    mass = np.bincount(a, weights=objects.sizes, minlength=n)
    popularity = np.bincount(a, weights=objects.popularity, minlength=n)
    counts = np.bincount(a, minlength=n)

    return PlacementReport(
        fill=mass / caps,
        read_load=popularity / bws,
        stored_mass=mass,
        objects_per_disk=counts.astype(np.int64),
        total_capacity=float(caps.sum()),
        bandwidths=bws,
    )
