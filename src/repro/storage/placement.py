"""Placement strategies: where each object goes.

The paper's protocol is one policy among several a storage operator could
use; this module implements it alongside the standard alternatives so the
cluster experiments can compare them on equal footing:

* :class:`GreedyTwoChoice` — the paper's Algorithm 1 (configurable ``d``),
  with per-object sizes supported through the weighted engine;
* :class:`SingleChoice` — hash-style proportional random placement
  (the d=1 game; what plain consistent hashing with capacity-aware tokens
  achieves);
* :class:`RoundRobinBySlots` — deterministic striping over the slot view
  (the "ideal but stateful" coordinator policy);
* :class:`LeastLoaded` — the omniscient baseline probing every disk.

All strategies return an assignment array: object k → disk index.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..sampling.distributions import probability_model
from ..sampling.rngutils import make_rng
from .cluster import Cluster
from .objects import ObjectSet

__all__ = [
    "PlacementStrategy",
    "GreedyTwoChoice",
    "SingleChoice",
    "RoundRobinBySlots",
    "LeastLoaded",
]


class PlacementStrategy(ABC):
    """Maps an :class:`ObjectSet` onto a :class:`Cluster`."""

    #: Stable identifier used in experiment output.
    name: str = "abstract"

    @abstractmethod
    def place(self, objects: ObjectSet, cluster: Cluster, seed=None) -> np.ndarray:
        """Return the assignment array (object index → disk index)."""


class GreedyTwoChoice(PlacementStrategy):
    """The paper's Algorithm 1 as a placement policy.

    Unit-size objects run through the exact integer engine; heterogeneous
    sizes fall back to the float loop with the same greedy rule.
    """

    def __init__(self, d: int = 2, probabilities="proportional"):
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = d
        self.probabilities = probabilities
        self.name = f"greedy-{d}-choice"

    def place(self, objects: ObjectSet, cluster: Cluster, seed=None) -> np.ndarray:
        rng = make_rng(seed)
        bins = cluster.bin_array()
        model = probability_model(self.probabilities)
        sampler = model.sampler(bins.capacities)
        m = objects.count
        choices = sampler.sample((m, self.d), rng)
        tie_u = rng.random(m)
        caps = bins.capacities.tolist()
        sizes = objects.sizes

        if np.all(sizes == 1.0):
            counts = [0] * bins.n
            assignment = np.empty(m, dtype=np.int64)
            # run ball-by-ball to capture each assignment: reuse the batch
            # engine one row at a time is slow; instead replicate its d-row
            # logic inline via run_batch on single-row slices would also be
            # slow.  Track assignments by diffing counts per chunk of 1.
            # Simpler: use the heights list trick — run the batch while
            # recording chosen bins through a wrapper loop.
            assignment = _assign_unit(counts, caps, choices, tie_u)
            return assignment
        return _assign_weighted(caps, sizes.tolist(), choices.tolist(), tie_u.tolist())


def _assign_unit(counts, caps, choices, tie_u) -> np.ndarray:
    """Unit-size greedy assignment recording the chosen bin per object."""
    m, d = choices.shape
    assignment = np.empty(m, dtype=np.int64)
    tie = tie_u.tolist()
    rows = choices.tolist()
    for j in range(m):
        row = rows[j]
        best = [row[0]]
        best_num = counts[row[0]] + 1
        best_den = caps[row[0]]
        for b in row[1:]:
            num = counts[b] + 1
            den = caps[b]
            lhs = num * best_den
            rhs = best_num * den
            if lhs < rhs:
                best = [b]
                best_num = num
                best_den = den
            elif lhs == rhs and b not in best:
                best.append(b)
        if len(best) > 1:
            cmax = max(caps[b] for b in best)
            best = [b for b in best if caps[b] == cmax]
        chosen = best[0] if len(best) == 1 else best[int(tie[j] * len(best))]
        counts[chosen] += 1
        assignment[j] = chosen
    return assignment


def _assign_weighted(caps, sizes, rows, tie) -> np.ndarray:
    """Weighted greedy assignment (float loads)."""
    masses = [0.0] * len(caps)
    m = len(sizes)
    assignment = np.empty(m, dtype=np.int64)
    for j in range(m):
        s = sizes[j]
        row = rows[j]
        best = [row[0]]
        best_load = (masses[row[0]] + s) / caps[row[0]]
        for b in row[1:]:
            load = (masses[b] + s) / caps[b]
            if load < best_load - 1e-15:
                best = [b]
                best_load = load
            elif abs(load - best_load) <= 1e-12 * max(1.0, abs(best_load)) and b not in best:
                best.append(b)
        if len(best) > 1:
            cmax = max(caps[b] for b in best)
            best = [b for b in best if caps[b] == cmax]
        chosen = best[0] if len(best) == 1 else best[int(tie[j] * len(best))]
        masses[chosen] += s
        assignment[j] = chosen
    return assignment


class SingleChoice(PlacementStrategy):
    """Proportional random placement (hash-style, d = 1)."""

    name = "single-choice"

    def __init__(self, probabilities="proportional"):
        self.probabilities = probabilities

    def place(self, objects: ObjectSet, cluster: Cluster, seed=None) -> np.ndarray:
        rng = make_rng(seed)
        bins = cluster.bin_array()
        sampler = probability_model(self.probabilities).sampler(bins.capacities)
        return sampler.sample(objects.count, rng)


class RoundRobinBySlots(PlacementStrategy):
    """Deterministic striping across the slot view.

    Object ``k`` goes to the owner of slot ``k mod C`` — a zero-randomness
    coordinator policy that achieves near-perfect fill for unit objects and
    serves as the deterministic reference point.
    """

    name = "round-robin"

    def place(self, objects: ObjectSet, cluster: Cluster, seed=None) -> np.ndarray:
        del seed  # deterministic
        owner = cluster.bin_array().slot_owner()
        idx = np.arange(objects.count) % owner.size
        return owner[idx]


class LeastLoaded(PlacementStrategy):
    """Omniscient baseline: every object goes to a least-loaded disk.

    For each object the disk minimising the load-after-placement
    ``(mass + s) / capacity`` is scanned directly (the argmin depends on
    the object size, so a static heap key would be wrong for non-unit
    objects); ties go to the largest capacity, then the lowest index —
    fully deterministic.  Cost is O(m·n), acceptable for baseline use.
    """

    name = "least-loaded"

    def place(self, objects: ObjectSet, cluster: Cluster, seed=None) -> np.ndarray:
        del seed  # deterministic given the object order
        caps = cluster.capacities().astype(np.float64)
        masses = np.zeros(cluster.n_disks)
        assignment = np.empty(objects.count, dtype=np.int64)
        for k, s in enumerate(objects.sizes):
            loads_after = (masses + s) / caps
            best = loads_after.min()
            candidates = np.flatnonzero(loads_after <= best * (1 + 1e-12))
            cmax = caps[candidates].max()
            chosen = int(candidates[caps[candidates] == cmax][0])
            masses[chosen] += s
            assignment[k] = chosen
        return assignment
