"""End-to-end cluster scenarios: placement, reads, expansion.

:func:`compare_strategies` runs several placement policies on the same
cluster/object population and reports their fill and read imbalance —
the storage-operator view of the paper's comparison.  :func:`expansion_study`
plays a Section-4.3 growth event: place objects, add a disk batch, and
compare the minimum-migration rebalance against re-placing from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.migration import expected_displaced_from_scratch, rebalance_waterfill
from ..sampling.rngutils import spawn_seed_sequences
from .cluster import Cluster
from .metrics import PlacementReport, evaluate_placement
from .objects import ObjectSet
from .placement import GreedyTwoChoice, PlacementStrategy

__all__ = ["StrategyComparison", "compare_strategies", "ExpansionStudy", "expansion_study"]


@dataclass(frozen=True)
class StrategyComparison:
    """Mean metrics per strategy over repetitions."""

    reports: dict[str, dict[str, float]]
    repetitions: int

    def best_by(self, metric: str) -> str:
        """Name of the strategy minimising *metric*."""
        return min(self.reports, key=lambda name: self.reports[name][metric])

    def table_rows(self) -> list[tuple]:
        """Rows (strategy, max_fill, fill_imbalance, read_imbalance)."""
        return [
            (
                name,
                vals["max_fill"],
                vals["fill_imbalance"],
                vals["read_imbalance"],
            )
            for name, vals in self.reports.items()
        ]


def compare_strategies(
    strategies,
    objects: ObjectSet,
    cluster: Cluster,
    *,
    repetitions: int = 5,
    seed=None,
) -> StrategyComparison:
    """Evaluate each strategy *repetitions* times on fresh seeds."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    strategies = list(strategies)
    if not strategies:
        raise ValueError("need at least one strategy")
    seeds = spawn_seed_sequences(seed, len(strategies))
    out: dict[str, dict[str, float]] = {}
    for strategy, strat_seed in zip(strategies, seeds):
        if not isinstance(strategy, PlacementStrategy):
            raise TypeError(f"{strategy!r} is not a PlacementStrategy")
        rep_seeds = strat_seed.spawn(repetitions)
        metrics = {"max_fill": [], "fill_imbalance": [], "read_imbalance": []}
        for rs in rep_seeds:
            assignment = strategy.place(objects, cluster, seed=rs)
            report = evaluate_placement(assignment, objects, cluster)
            metrics["max_fill"].append(report.max_fill)
            metrics["fill_imbalance"].append(report.fill_imbalance)
            metrics["read_imbalance"].append(report.read_imbalance)
        out[strategy.name] = {k: float(np.mean(v)) for k, v in metrics.items()}
    return StrategyComparison(reports=out, repetitions=repetitions)


@dataclass(frozen=True)
class ExpansionStudy:
    """Outcome of one growth event."""

    before: PlacementReport
    after_incremental: PlacementReport
    after_scratch: PlacementReport
    balls_moved_incremental: int
    balls_displaced_scratch: float

    @property
    def migration_savings(self) -> float:
        """Fraction of the from-scratch displacement the rebalance avoids."""
        if self.balls_displaced_scratch == 0:
            return 0.0
        return 1.0 - self.balls_moved_incremental / self.balls_displaced_scratch


def expansion_study(
    cluster: Cluster,
    objects: ObjectSet,
    *,
    new_disks: int,
    new_capacity: int,
    strategy: PlacementStrategy | None = None,
    seed=None,
) -> ExpansionStudy:
    """Place objects, expand the cluster, compare rebalance vs re-place.

    Unit-size objects are assumed for the migration arithmetic (the
    rebalance planner counts balls); sizes are validated accordingly.
    """
    if not np.all(objects.sizes == 1.0):
        raise ValueError(
            "expansion_study requires unit-size objects (the migration "
            "planner counts balls); use unit_objects(...)"
        )
    strategy = strategy or GreedyTwoChoice()
    seeds = spawn_seed_sequences(seed, 2)

    assignment = strategy.place(objects, cluster, seed=seeds[0])
    before = evaluate_placement(assignment, objects, cluster)

    grown = cluster.expand(new_disks, new_capacity)
    grown_bins = grown.bin_array()
    old_counts = np.bincount(assignment, minlength=grown.n_disks)

    plan = rebalance_waterfill(old_counts, grown_bins)
    incremental = PlacementReport(
        fill=plan.new_counts / grown.capacities(),
        read_load=plan.new_counts / grown.bandwidths(),
        stored_mass=plan.new_counts.astype(np.float64),
        objects_per_disk=plan.new_counts,
        total_capacity=float(grown.total_capacity),
        bandwidths=grown.bandwidths(),
    )

    fresh_assignment = strategy.place(objects, grown, seed=seeds[1])
    scratch = evaluate_placement(fresh_assignment, objects, grown)
    displaced = expected_displaced_from_scratch(
        old_counts, np.bincount(fresh_assignment, minlength=grown.n_disks)
    )

    return ExpansionStudy(
        before=before,
        after_incremental=incremental,
        after_scratch=scratch,
        balls_moved_incremental=plan.balls_moved,
        balls_displaced_scratch=displaced,
    )
