"""Disk clusters: the bins of the storage scenario.

A :class:`Disk` carries a storage capacity (the model's bin capacity) and a
bandwidth (used to normalise read traffic); a :class:`Cluster` is an ordered
set of disks exposing the :class:`~repro.bins.arrays.BinArray` view the
allocation protocol operates on.  Clusters can grow by batches exactly as in
Section 4.3 (delegating to the growth models).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bins.arrays import BinArray
from ..bins.growth import GrowthModel

__all__ = ["Disk", "Cluster"]


@dataclass(frozen=True)
class Disk:
    """One storage device.

    ``capacity`` is the integer bin capacity of the model; ``bandwidth``
    scales how much read traffic the disk absorbs per unit time (defaults
    to the capacity — bigger generations are faster too, the common case
    the paper's "speed, bandwidth" reading suggests); ``generation`` labels
    the purchase batch.
    """

    capacity: int
    bandwidth: float | None = None
    generation: int = 0

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    @property
    def effective_bandwidth(self) -> float:
        """Bandwidth, defaulting to the capacity."""
        return float(self.bandwidth) if self.bandwidth is not None else float(self.capacity)


class Cluster:
    """An ordered collection of disks."""

    def __init__(self, disks):
        self.disks: tuple[Disk, ...] = tuple(disks)
        if not self.disks:
            raise ValueError("a Cluster needs at least one disk")

    # -- views ---------------------------------------------------------------

    @property
    def n_disks(self) -> int:
        """Number of disks."""
        return len(self.disks)

    def bin_array(self) -> BinArray:
        """The capacities as a :class:`BinArray` (generation as label)."""
        return BinArray(
            np.asarray([d.capacity for d in self.disks], dtype=np.int64),
            labels=tuple(d.generation for d in self.disks),
        )

    def capacities(self) -> np.ndarray:
        """Capacity vector."""
        return np.asarray([d.capacity for d in self.disks], dtype=np.int64)

    def bandwidths(self) -> np.ndarray:
        """Effective bandwidth vector."""
        return np.asarray([d.effective_bandwidth for d in self.disks])

    @property
    def total_capacity(self) -> int:
        """Sum of disk capacities."""
        return int(self.capacities().sum())

    def __repr__(self) -> str:
        gens = sorted({d.generation for d in self.disks})
        return (
            f"Cluster(n_disks={self.n_disks}, C={self.total_capacity}, "
            f"generations={gens})"
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def homogeneous(cls, n: int, capacity: int = 1, bandwidth: float | None = None) -> "Cluster":
        """*n* identical disks."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return cls([Disk(capacity, bandwidth) for _ in range(n)])

    @classmethod
    def from_bin_array(cls, bins: BinArray) -> "Cluster":
        """Wrap an existing bin array (labels become generations when ints)."""
        labels = bins.labels or (0,) * bins.n
        disks = []
        for cap, lab in zip(bins.capacities, labels):
            gen = lab if isinstance(lab, int) else 0
            disks.append(Disk(int(cap), generation=gen))
        return cls(disks)

    @classmethod
    def from_growth_model(cls, model: GrowthModel, max_disks: int) -> "Cluster":
        """The final state of a Section-4.3 growth schedule as a cluster."""
        return cls.from_bin_array(model.final_state(max_disks))

    def expand(self, count: int, capacity: int, bandwidth: float | None = None) -> "Cluster":
        """A new cluster with *count* extra disks of the next generation."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        next_gen = max(d.generation for d in self.disks) + 1
        return Cluster(
            list(self.disks)
            + [Disk(capacity, bandwidth, generation=next_gen) for _ in range(count)]
        )
