"""Storage objects and workload generators.

The paper motivates heterogeneous balls-into-bins with storage systems:
requests/data items are balls, disks are bins.  This module provides the
object populations the cluster simulator places and serves:

* sizes — unit (the paper's model), uniform, or lognormal (realistic file
  sizes);
* read popularity — uniform or Zipf (hot objects), used by the read-load
  experiments to weight per-disk traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sampling.rngutils import make_rng

__all__ = ["ObjectSet", "unit_objects", "uniform_objects", "lognormal_objects"]


@dataclass(frozen=True)
class ObjectSet:
    """A population of storage objects.

    Attributes
    ----------
    sizes:
        Positive object sizes (storage footprint).
    popularity:
        Non-negative read weights, normalised to sum to 1.  ``popularity[k]``
        is the probability that a read request targets object ``k``.
    """

    sizes: np.ndarray
    popularity: np.ndarray

    def __post_init__(self):
        sizes = np.asarray(self.sizes, dtype=np.float64)
        pop = np.asarray(self.popularity, dtype=np.float64)
        if sizes.ndim != 1 or pop.shape != sizes.shape:
            raise ValueError("sizes and popularity must be equal-length 1-D arrays")
        if sizes.size == 0:
            raise ValueError("an ObjectSet needs at least one object")
        if np.any(sizes <= 0) or not np.all(np.isfinite(sizes)):
            raise ValueError("sizes must be positive and finite")
        if np.any(pop < 0) or not np.all(np.isfinite(pop)):
            raise ValueError("popularity must be non-negative and finite")
        total = pop.sum()
        if total <= 0:
            raise ValueError("total popularity must be positive")
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "popularity", pop / total)

    @property
    def count(self) -> int:
        """Number of objects."""
        return int(self.sizes.size)

    @property
    def total_size(self) -> float:
        """Sum of object sizes."""
        return float(self.sizes.sum())

    def sample_reads(self, requests: int, rng=None) -> np.ndarray:
        """Draw *requests* object indices according to popularity."""
        if requests < 0:
            raise ValueError(f"requests must be non-negative, got {requests}")
        gen = make_rng(rng)
        return gen.choice(self.count, size=requests, p=self.popularity)


def _zipf_popularity(count: int, zipf_s: float | None, rng) -> np.ndarray:
    if zipf_s is None:
        return np.full(count, 1.0 / count)
    if zipf_s <= 0:
        raise ValueError(f"zipf_s must be positive, got {zipf_s}")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks**-zipf_s
    # randomise which object gets which rank so popularity is independent
    # of creation order
    rng.shuffle(weights)
    return weights / weights.sum()


def unit_objects(count: int, *, zipf_s: float | None = None, rng=None) -> ObjectSet:
    """*count* unit-size objects (the paper's unit balls).

    ``zipf_s`` makes read popularity Zipf-distributed with that exponent;
    ``None`` gives uniform popularity.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    gen = make_rng(rng)
    return ObjectSet(
        sizes=np.ones(count),
        popularity=_zipf_popularity(count, zipf_s, gen),
    )


def uniform_objects(
    count: int, low: float = 0.5, high: float = 1.5, *, zipf_s: float | None = None, rng=None
) -> ObjectSet:
    """Objects with sizes uniform in ``[low, high]``."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not 0 < low <= high:
        raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
    gen = make_rng(rng)
    return ObjectSet(
        sizes=gen.uniform(low, high, size=count),
        popularity=_zipf_popularity(count, zipf_s, gen),
    )


def lognormal_objects(
    count: int, mean: float = 0.0, sigma: float = 1.0, *, zipf_s: float | None = None, rng=None
) -> ObjectSet:
    """Objects with lognormal sizes (realistic file-size distribution)."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    gen = make_rng(rng)
    return ObjectSet(
        sizes=gen.lognormal(mean, sigma, size=count),
        popularity=_zipf_popularity(count, zipf_s, gen),
    )
