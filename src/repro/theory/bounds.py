"""The paper's analytical bounds as evaluatable functions.

Each theorem/observation becomes a function returning the bound it proves
(as a number) for concrete parameters.  Asymptotic ``O(1)`` terms are
exposed as explicit ``constant`` arguments so experiments can report the
bound both with the conventional value and with a fitted one; the *shape*
(the non-constant part) is what the reproduction validates.

Summary:

===========================  =====================================================
Observation 1                big-bin load <= 4 w.h.p.
Theorem 1                    ``ℓ_max <= 6 kappa`` under capacity conditions
Theorem 2                    ``ℓ_max <= 2 (kappa + 4)`` when ``C_s`` is small
Theorem 3                    ``ℓ_max <= ln ln n / ln d + O(1)``
Theorem 4 (Corollary 1.4 of  standard game: ``m/n + ln ln n / ln d ± O(1)``
[Berenbrink et al. 2000])
Observation 2                uniform capacity ``c``: ``(m/n + O(ln ln n)) / c``
Corollary 1                  ``c = Ω(ln ln n)``, ``m = k n c``: ``k + O(1)``
Theorem 5                    threshold distribution: ``k/alpha + O(1)``
===========================  =====================================================
"""

from __future__ import annotations

import math

__all__ = [
    "observation1_bound",
    "theorem1_bound",
    "theorem2_bound",
    "theorem3_bound",
    "theorem4_standard_game",
    "observation2_bound",
    "corollary1_bound",
    "theorem5_bound",
    "loglog_over_logd",
]


def loglog_over_logd(n: int, d: int) -> float:
    """The leading term ``ln ln n / ln d`` common to Theorems 3 and 4.

    Returns 0 for ``n`` too small for the iterated logarithm to be positive
    (n <= e), mirroring the convention used when plotting asymptotic curves
    at small n.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if d < 2:
        raise ValueError(f"d must be >= 2, got {d}")
    inner = math.log(n)
    if inner <= 1.0:
        return 0.0
    return math.log(inner) / math.log(d)


def observation1_bound() -> float:
    """Observation 1: w.h.p. no big bin exceeds load 4 (and no B_b ball
    has height above 4).  The bound itself is the constant 4."""
    return 4.0


def theorem1_bound(kappa: float = 1.0) -> float:
    """Theorem 1: ``ℓ_max <= 6 kappa`` with probability ``1 - n^-kappa``.

    Applicability (m >= n^2, or C_s <= c (n ln n)^{2/3}) is checked by
    :func:`repro.theory.conditions.theorem1_applies`.
    """
    if kappa <= 0:
        raise ValueError(f"kappa must be positive, got {kappa}")
    return 6.0 * kappa


def theorem2_bound(kappa: float = 1.0) -> float:
    """Theorem 2: ``ℓ_max <= 2 (kappa + 4)`` with probability ``1 - n^-kappa``."""
    if kappa <= 0:
        raise ValueError(f"kappa must be positive, got {kappa}")
    return 2.0 * (kappa + 4.0)


def theorem3_bound(n: int, d: int, constant: float = 1.0) -> float:
    """Theorem 3: ``ℓ_max <= ln ln n / ln d + O(1)`` for ``m = C = n^k``.

    *constant* stands in for the ``O(1)`` term.
    """
    return loglog_over_logd(n, d) + constant


def theorem4_standard_game(m: int, n: int, d: int, constant: float = 0.0) -> float:
    """Theorem 4 (heavily-loaded standard game): balls in the fullest bin
    ``= m/n + ln ln n / ln d ± O(1)``.  Returns the central prediction plus
    *constant*."""
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return m / n + loglog_over_logd(n, d) + constant


def observation2_bound(m: int, n: int, capacity: float, constant: float = 0.0) -> float:
    """Observation 2: uniform capacity ``c`` bins give
    ``ℓ_max = (m/n + O(ln ln n)) / c`` w.h.p.

    The ``O(ln ln n)`` term is taken as ``ln ln n + constant`` — exactly the
    form Section 4.1 compares simulations against ("the maximum load is
    very close to 1 + ln ln(n)/c" for ``m = c·n``); the ``1/ln d`` factor of
    the sharper Theorem 4 refinement is absorbed into *constant*.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    inner = math.log(n)
    loglog = math.log(inner) if inner > 1.0 else 0.0
    return (m / n + loglog + constant) / capacity


def corollary1_bound(k: float, constant: float = 1.0) -> float:
    """Corollary 1: ``m = k n c`` with ``c = Ω(ln ln n)`` gives
    ``ℓ_max = k + O(1)``."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return k + constant


def theorem5_bound(k: float, alpha: float, q: float, n: int, constant_factor: float = 1.0) -> float:
    """Theorem 5: the threshold distribution yields
    ``ℓ_max <= k/alpha + O(ln ln n)/q = O(1)`` for ``q = Ω(ln ln n)``.

    Returns ``k/alpha + constant_factor * ln ln(alpha n) / q`` — the explicit
    expression from the proof's final display.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    eff_n = max(2.0, alpha * n)
    inner = math.log(eff_n)
    loglog = math.log(inner) if inner > 1.0 else 0.0
    return k / alpha + constant_factor * max(0.0, loglog) / q
