"""Applicability checkers: which theorem covers a given system?

Each checker takes a :class:`~repro.bins.arrays.BinArray` (plus the game
parameters) and decides whether the hypotheses of the corresponding theorem
hold, returning a :class:`ConditionReport` that records every clause.  The
CLI's ``describe`` command and the examples use these to annotate systems
with the bounds the paper guarantees for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..bins.arrays import BinArray
from ..bins.classify import DEFAULT_R, big_small_split

__all__ = [
    "ConditionReport",
    "theorem1_applies",
    "theorem2_applies",
    "theorem3_applies",
    "corollary1_applies",
    "theorem5_applies",
    "applicable_theorems",
]


@dataclass(frozen=True)
class ConditionReport:
    """Outcome of checking one theorem's hypotheses against a system."""

    theorem: str
    applies: bool
    clauses: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.applies

    def explain(self) -> str:
        """Human-readable clause-by-clause account."""
        lines = [f"{self.theorem}: {'applies' if self.applies else 'does not apply'}"]
        for name, (ok, detail) in self.clauses.items():
            lines.append(f"  [{'x' if ok else ' '}] {name}: {detail}")
        return "\n".join(lines)


def theorem1_applies(
    bins: BinArray, m: int | None = None, *, r: float = DEFAULT_R, c: float = 1.0
) -> ConditionReport:
    """Theorem 1 needs ``m = C`` and (``m >= n^2`` or ``C_s <= c (n ln n)^{2/3}``)."""
    if m is None:
        m = bins.total_capacity
    split = big_small_split(bins, r)
    n = bins.n
    m_eq_c = m == bins.total_capacity
    cond1 = m >= n * n
    bound = c * (n * max(math.log(n), 1e-12)) ** (2.0 / 3.0) if n > 1 else 0.0
    cond2 = split.small_capacity <= bound
    clauses = {
        "m = C": (m_eq_c, f"m={m}, C={bins.total_capacity}"),
        "(1) m >= n^2": (cond1, f"m={m}, n^2={n * n}"),
        "(2) C_s <= c (n ln n)^(2/3)": (
            cond2,
            f"C_s={split.small_capacity}, bound={bound:.1f} (r={r}, c={c})",
        ),
    }
    return ConditionReport("Theorem 1", m_eq_c and (cond1 or cond2), clauses)


def theorem2_applies(
    bins: BinArray, m: int | None = None, d: int = 2, *, r: float = DEFAULT_R
) -> ConditionReport:
    """Theorem 2 needs ``m = C``, ``d >= 2`` and
    ``C_s <= C^{(d-1)/d} (log C)^{1/d}``."""
    if m is None:
        m = bins.total_capacity
    split = big_small_split(bins, r)
    C = bins.total_capacity
    m_eq_c = m == C
    d_ok = d >= 2
    bound = C ** ((d - 1) / d) * max(math.log(C), 1e-12) ** (1.0 / d) if C > 1 else 0.0
    cs_ok = split.small_capacity <= bound
    clauses = {
        "m = C": (m_eq_c, f"m={m}, C={C}"),
        "d >= 2": (d_ok, f"d={d}"),
        "C_s <= C^((d-1)/d) (log C)^(1/d)": (
            cs_ok,
            f"C_s={split.small_capacity}, bound={bound:.1f}",
        ),
    }
    return ConditionReport("Theorem 2", m_eq_c and d_ok and cs_ok, clauses)


def theorem3_applies(bins: BinArray, m: int | None = None, d: int = 2) -> ConditionReport:
    """Theorem 3 needs ``m = C`` and ``d >= 2`` (``C = n^k`` holds for any
    fixed system by choosing ``k = log C / log n``; the clause recorded here
    is that ``C >= n``, i.e. ``k >= 1``)."""
    if m is None:
        m = bins.total_capacity
    C = bins.total_capacity
    m_eq_c = m == C
    d_ok = d >= 2
    poly = C >= bins.n
    clauses = {
        "m = C": (m_eq_c, f"m={m}, C={C}"),
        "d >= 2": (d_ok, f"d={d}"),
        "C >= n (k >= 1)": (poly, f"C={C}, n={bins.n}"),
    }
    return ConditionReport("Theorem 3", m_eq_c and d_ok and poly, clauses)


def corollary1_applies(
    bins: BinArray, m: int, *, loglog_factor: float = 1.0
) -> ConditionReport:
    """Corollary 1 needs uniform capacity ``c = Ω(ln ln n)`` and ``m = k n c``.

    ``loglog_factor`` is the implied constant in ``Ω(ln ln n)``.
    """
    uniform = bins.is_uniform()
    c = int(bins.capacities[0]) if uniform else 0
    n = bins.n
    loglog = math.log(max(math.log(max(n, 2)), 1.0 + 1e-12)) if n > 2 else 0.0
    big_enough = uniform and c >= loglog_factor * max(loglog, 0.0)
    k_integral = uniform and c > 0 and m % (n * c) == 0
    clauses = {
        "uniform capacities": (uniform, f"classes={sorted(bins.size_class_counts())}"),
        "c >= factor*lnln(n)": (big_enough, f"c={c}, lnln(n)={loglog:.3f}"),
        "m = k*n*c (k integral)": (k_integral, f"m={m}, n*c={n * c if uniform else 'n/a'}"),
    }
    return ConditionReport("Corollary 1", uniform and big_enough and k_integral, clauses)


def theorem5_applies(
    bins: BinArray, q: float, *, alpha_min: float = 0.0, loglog_factor: float = 1.0
) -> ConditionReport:
    """Theorem 5 needs an ``alpha``-fraction of bins with capacity ``q(n)``
    where ``q = Ω(ln ln n)`` and all other bins strictly smaller.

    ``alpha`` is measured from the array (fraction of bins with capacity
    >= q); ``alpha_min`` lets callers require a minimum fraction.
    """
    caps = bins.capacities
    n = bins.n
    eligible = int((caps >= q).sum())
    alpha = eligible / n
    loglog = math.log(max(math.log(max(n, 2)), 1.0 + 1e-12)) if n > 2 else 0.0
    q_ok = q >= loglog_factor * max(loglog, 0.0)
    alpha_ok = alpha > max(alpha_min, 0.0)
    clauses = {
        "some bins reach q": (eligible > 0, f"{eligible}/{n} bins with capacity >= {q}"),
        "alpha > alpha_min": (alpha_ok, f"alpha={alpha:.3f}, alpha_min={alpha_min}"),
        "q >= factor*lnln(n)": (q_ok, f"q={q}, lnln(n)={loglog:.3f}"),
    }
    return ConditionReport("Theorem 5", eligible > 0 and alpha_ok and q_ok, clauses)


def applicable_theorems(bins: BinArray, m: int | None = None, d: int = 2) -> list[ConditionReport]:
    """Evaluate every applicability checker with default constants."""
    if m is None:
        m = bins.total_capacity
    reports = [
        theorem1_applies(bins, m),
        theorem2_applies(bins, m, d),
        theorem3_applies(bins, m, d),
        corollary1_applies(bins, m),
    ]
    caps = bins.capacities
    reports.append(theorem5_applies(bins, q=float(caps.max())))
    return reports
