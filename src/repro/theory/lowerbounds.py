"""Reference growth rates for the baseline games.

The paper's comparisons implicitly lean on classical facts about the
*one-choice* game; having them as functions lets benches and examples
annotate baseline curves with their expected growth:

* ``m = n`` one-choice: max load ``~ ln n / ln ln n`` (balls-in-bins
  folklore / [Raab–Steger 1998]);
* ``m >> n ln n`` one-choice: max load ``~ m/n + sqrt(2 (m/n) ln n)``
  (Gaussian regime of the same paper);
* the two-choice gap ``ln ln n / ln d`` for contrast (re-exported from
  :mod:`repro.theory.bounds`).
"""

from __future__ import annotations

import math

from .bounds import loglog_over_logd

__all__ = [
    "one_choice_max_light",
    "one_choice_max_heavy",
    "one_choice_gap_heavy",
    "two_choice_gap",
]


def one_choice_max_light(n: int) -> float:
    """Expected max load of the one-choice game with ``m = n`` balls.

    The classical ``ln n / ln ln n`` first-order term (Raab–Steger);
    returns the leading term without lower-order corrections.
    """
    if n < 3:
        raise ValueError(f"n must be >= 3 for the asymptotic form, got {n}")
    return math.log(n) / math.log(math.log(n))


def one_choice_gap_heavy(m: int, n: int) -> float:
    """Gap (max − m/n) of the heavy one-choice game: ``sqrt(2 (m/n) ln n)``.

    Valid for ``m >> n ln n``; grows with m — the contrast to the
    m-invariant two-choice gap (Theorem 4 / Figure 16).
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    return math.sqrt(2.0 * (m / n) * math.log(n))


def one_choice_max_heavy(m: int, n: int) -> float:
    """Expected max of the heavy one-choice game: ``m/n + gap``."""
    return m / n + one_choice_gap_heavy(m, n)


def two_choice_gap(n: int, d: int = 2) -> float:
    """The d-choice gap ``ln ln n / ln d`` (for side-by-side annotation)."""
    return loglog_over_logd(n, d)
