"""Tail-bound helpers used by the paper's proofs (Chernoff, binomial tails).

These are the *analytical* inequalities — Lemma 2's bounds and the Chernoff
step inside Observation 1 — exposed as functions so that tests and the
theorem-condition checkers can evaluate the proved failure probabilities for
concrete parameter settings and compare them with simulation.
"""

from __future__ import annotations

import math

__all__ = [
    "chernoff_upper",
    "binomial_tail_upper",
    "lemma2_small_ball_count_tail",
    "lemma2_collision_tail",
]


def chernoff_upper(mean: float, epsilon: float) -> float:
    """Chernoff bound ``P[X >= (1+eps) mu] <= exp(-eps^2 mu / 3)``.

    The form used in Observation 1's proof (there with ``eps = 1``).  Valid
    for sums of independent 0/1 variables and ``0 < eps <= 1``.
    """
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    return math.exp(-(epsilon**2) * mean / 3.0)


def binomial_tail_upper(trials: int, p: float, k: float) -> float:
    """The paper's ``P[B(n, p) >= k] <= (e n p / k)^k`` upper bound.

    Derived from ``C(n, k) <= (e n / k)^k`` — the inequality invoked twice in
    Lemma 2's proof.  Returns 1.0 when the bound is vacuous (``k <= e n p``
    makes the base exceed 1, and any probability is <= 1).
    """
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    if k <= 0:
        return 1.0
    base = math.e * trials * p / k
    if base >= 1.0:
        return 1.0
    # base^k can underflow for huge k; compute in log space.
    return math.exp(k * math.log(base))


def lemma2_small_ball_count_tail(m: int, c_small: int, c_total: int, k: float, d: int = 2) -> float:
    """Lemma 2(1): ``P[X_s >= k] <= (e C_s^2 / (k C))^k`` (stated for d=2).

    ``X_s`` counts balls whose ``d`` choices all hit small bins; each ball
    does so with probability ``(C_s/C)^d <= (C_s/C)^2`` for ``d >= 2``.  For
    general ``d`` we use the exact per-ball probability, which only tightens
    the bound.
    """
    if m < 0 or c_small < 0 or c_total <= 0:
        raise ValueError("need m >= 0, c_small >= 0, c_total > 0")
    if c_small > c_total:
        raise ValueError(f"C_s ({c_small}) cannot exceed C ({c_total})")
    if d < 2:
        raise ValueError(f"Lemma 2 assumes d >= 2, got {d}")
    p_s = (c_small / c_total) ** d
    return binomial_tail_upper(m, p_s, k)


def lemma2_collision_tail(k: int, c_small: int, lam: float, d: int = 2) -> float:
    """Lemma 2(2): ``P[Y >= lam | X_s = k] <= (e k^3 / (lam C_s^2))^lam``.

    ``Y`` counts collisions among the ``k`` small-only balls when they are
    dominated by a process into ``C_s`` unit bins; each collides with
    probability at most ``(k / C_s)^d <= (k / C_s)^2``.
    """
    if k < 0 or c_small <= 0:
        raise ValueError("need k >= 0 and c_small > 0")
    if d < 2:
        raise ValueError(f"Lemma 2 assumes d >= 2, got {d}")
    p_c = min(1.0, (k / c_small) ** d)
    return binomial_tail_upper(k, p_c, lam)
