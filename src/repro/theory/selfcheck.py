"""Theorem self-checks: run the simulator against every analytical claim.

:func:`verify_all` builds, for each of the paper's results, a system that
satisfies its hypotheses, estimates the relevant statistic adaptively, and
reports predicted-vs-measured.  It powers ``repro verify`` — a one-command
regression check that the implementation still realises the paper's
mathematics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.convergence import run_until_ci
from ..bins.generators import two_class_bins, uniform_bins
from ..core.majorization import coupled_domination_run
from ..core.simulation import simulate
from ..sampling.distributions import ThresholdProbability
from .bounds import (
    observation1_bound,
    observation2_bound,
    theorem3_bound,
    theorem5_bound,
)

__all__ = ["CheckOutcome", "verify_all"]


@dataclass(frozen=True)
class CheckOutcome:
    """One claim's verification result."""

    claim: str
    predicted: float
    measured: float
    passed: bool
    detail: str = ""

    def row(self) -> tuple:
        """Table row for CLI rendering."""
        return (self.claim, self.predicted, self.measured, "ok" if self.passed else "FAIL")


def _estimate(task, seed, halfwidth=0.1, max_reps=200) -> float:
    est = run_until_ci(
        task, target_halfwidth=halfwidth, max_repetitions=max_reps,
        min_repetitions=5, batch=5, seed=seed,
    )
    return est.mean


def verify_all(*, n: int = 1000, seed: int = 20260612) -> list[CheckOutcome]:
    """Run every theorem check at problem size ~*n*; return the outcomes."""
    if n < 100:
        raise ValueError(f"n must be >= 100 for meaningful statistics, got {n}")
    outcomes: list[CheckOutcome] = []
    master = np.random.SeedSequence(seed).spawn(6)

    # Observation 1: big bins stay below load 4.
    bins = two_class_bins(int(0.9 * n), n - int(0.9 * n), 1, 64)

    def obs1(ss):
        res = simulate(bins, seed=ss)
        return res.max_load_of_class(64)

    measured = _estimate(obs1, master[0])
    outcomes.append(
        CheckOutcome(
            claim="Observation 1 (big-bin load)",
            predicted=observation1_bound(),
            measured=measured,
            passed=measured <= observation1_bound(),
            detail=f"caps 1 and 64, n={n}",
        )
    )

    # Lemma 1: coupled domination.
    lemma_bins = two_class_bins(n // 10, n // 10, 1, 6)
    dominated = all(
        coupled_domination_run(lemma_bins, seed=s).q_dominates_max
        for s in master[1].spawn(10)
    )
    outcomes.append(
        CheckOutcome(
            claim="Lemma 1 (unit-bin domination)",
            predicted=1.0,
            measured=1.0 if dominated else 0.0,
            passed=dominated,
            detail="10 coupled runs",
        )
    )

    # Theorem 3: lnln(n)/ln(d) + O(1).
    t3_bins = two_class_bins(n // 2, n // 2, 1, 10)
    bound3 = theorem3_bound(t3_bins.n, 2, constant=2.0)

    def t3(ss):
        return simulate(t3_bins, seed=ss).max_load

    measured3 = _estimate(t3, master[2])
    outcomes.append(
        CheckOutcome(
            claim="Theorem 3 (lnln/ln d + 2)",
            predicted=bound3,
            measured=measured3,
            passed=measured3 <= bound3,
            detail=f"caps 1 and 10, n={t3_bins.n}",
        )
    )

    # Observation 2: uniform capacity 8.
    o2_bins = uniform_bins(n, 8)
    pred2 = observation2_bound(8 * n, n, 8)

    def o2(ss):
        return simulate(o2_bins, seed=ss).max_load

    measured2 = _estimate(o2, master[3], halfwidth=0.05)
    outcomes.append(
        CheckOutcome(
            claim="Observation 2 (c=8)",
            predicted=pred2,
            measured=measured2,
            passed=abs(measured2 - pred2) <= 0.5,
            detail="prediction is central, +-0.5 band",
        )
    )

    # Theorem 5: threshold distribution gives constant load.
    q = 8
    t5_bins = two_class_bins(n // 2, n // 2, 1, q)
    bound5 = theorem5_bound(1.0, 0.5, q, n) + 1.0

    def t5(ss):
        return simulate(t5_bins, probabilities=ThresholdProbability(q), seed=ss).max_load

    measured5 = _estimate(t5, master[4])
    outcomes.append(
        CheckOutcome(
            claim="Theorem 5 (threshold routing)",
            predicted=bound5,
            measured=measured5,
            passed=measured5 <= bound5,
            detail=f"q={q}, alpha=1/2, bound + 1 slack",
        )
    )

    # Theorem 4 corollary: the two-choice gap is m-invariant.
    heavy_bins = uniform_bins(max(n // 20, 32), 2)

    def gap_at(mult):
        def task(ss):
            return simulate(
                heavy_bins, m=mult * heavy_bins.total_capacity, seed=ss
            ).gap

        return task

    g1 = _estimate(gap_at(1), master[5], halfwidth=0.1)
    g50 = _estimate(gap_at(50), master[5], halfwidth=0.1)
    outcomes.append(
        CheckOutcome(
            claim="Theorem 4 (m-invariant gap)",
            predicted=g1,
            measured=g50,
            passed=abs(g50 - g1) <= 0.5,
            detail="gap at m=C vs m=50C",
        )
    )

    return outcomes
