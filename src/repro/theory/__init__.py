"""Analytical results of the paper as evaluatable functions and checkers."""

from .bounds import (
    corollary1_bound,
    loglog_over_logd,
    observation1_bound,
    observation2_bound,
    theorem1_bound,
    theorem2_bound,
    theorem3_bound,
    theorem4_standard_game,
    theorem5_bound,
)
from .conditions import (
    ConditionReport,
    applicable_theorems,
    corollary1_applies,
    theorem1_applies,
    theorem2_applies,
    theorem3_applies,
    theorem5_applies,
)
from .lowerbounds import (
    one_choice_gap_heavy,
    one_choice_max_heavy,
    one_choice_max_light,
    two_choice_gap,
)
from .tails import (
    binomial_tail_upper,
    chernoff_upper,
    lemma2_collision_tail,
    lemma2_small_ball_count_tail,
)

__all__ = [
    "loglog_over_logd",
    "observation1_bound",
    "theorem1_bound",
    "theorem2_bound",
    "theorem3_bound",
    "theorem4_standard_game",
    "observation2_bound",
    "corollary1_bound",
    "theorem5_bound",
    "ConditionReport",
    "theorem1_applies",
    "theorem2_applies",
    "theorem3_applies",
    "corollary1_applies",
    "theorem5_applies",
    "applicable_theorems",
    "chernoff_upper",
    "binomial_tail_upper",
    "lemma2_small_ball_count_tail",
    "lemma2_collision_tail",
    "one_choice_max_light",
    "one_choice_max_heavy",
    "one_choice_gap_heavy",
    "two_choice_gap",
]
