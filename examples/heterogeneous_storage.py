#!/usr/bin/env python
"""Capacity planning for a growing storage system (paper Section 4.3).

A cluster starts with two disks and grows in batches of 20; each new disk
generation is bigger than the last.  The example compares linear versus
exponential generation growth against a no-growth baseline, reporting the
maximum load (fill imbalance) after rebalancing at every expansion step —
exactly the question Figures 14/15 answer — and then uses the theorem
checkers to explain *why* the grown systems balance better.

Run:  python examples/heterogeneous_storage.py
"""

import numpy as np

from repro.bins import (
    BaselineGrowthModel,
    ExponentialGrowthModel,
    LinearGrowthModel,
)
from repro.core import simulate
from repro.io import ascii_plot
from repro.theory import theorem2_applies

MAX_DISKS = 402
REPS = 5
SEED = 7


def sweep(model, label: str):
    """Mean max load at every system state of the growth schedule."""
    xs, ys = [], []
    for state in model.states(MAX_DISKS):
        runs = [
            simulate(state, seed=(SEED, state.n, r)).max_load for r in range(REPS)
        ]
        xs.append(state.n)
        ys.append(float(np.mean(runs)))
    print(f"  {label:<28s} final system: {model.final_state(MAX_DISKS)!r}")
    return np.asarray(xs), np.asarray(ys)


def main() -> None:
    print(f"growing 2 -> {MAX_DISKS} disks in batches of 20, m = C at every step\n")
    models = [
        ("baseline (capacity 2)", BaselineGrowthModel()),
        ("linear growth a=2", LinearGrowthModel(offset=2)),
        ("linear growth a=6", LinearGrowthModel(offset=6)),
        ("exponential growth b=1.2", ExponentialGrowthModel(factor=1.2)),
    ]
    series = {}
    x_ref = None
    for label, model in models:
        xs, ys = sweep(model, label)
        x_ref = xs
        series[label] = ys

    print()
    print(ascii_plot(
        x_ref, series,
        title="max load vs number of disks (lower is better; optimum = 1)",
        x_label="disks", y_label="max load", height=16,
    ))

    # Why growth helps: once most capacity sits in big (>= ln n) disks, the
    # small-bin capacity C_s satisfies Theorem 2's premise and the paper
    # guarantees constant maximum load.
    final = LinearGrowthModel(offset=6).final_state(MAX_DISKS)
    report = theorem2_applies(final)
    print()
    print(report.explain())

    # The paper's experiments re-allocate from scratch at every expansion
    # step, noting that incremental reorganisation schemes exist.  Quantify
    # what they save for one expansion event:
    from repro.core import expected_displaced_from_scratch, rebalance_waterfill

    model = LinearGrowthModel(offset=6)
    states = list(model.states(MAX_DISKS))
    before, after = states[-2], states[-1]
    res = simulate(before, seed=SEED)
    old_counts = np.concatenate([res.counts, np.zeros(after.n - before.n, dtype=np.int64)])
    plan = rebalance_waterfill(old_counts, after)
    fresh = simulate(after, m=int(old_counts.sum()), seed=SEED + 1)
    displaced = expected_displaced_from_scratch(old_counts, fresh.counts)
    print()
    print(f"expansion {before.n} -> {after.n} disks with {old_counts.sum()} balls stored:")
    print(f"  minimum-migration rebalance moves {plan.balls_moved} balls")
    print(f"  from-scratch re-allocation displaces ~{displaced:.0f} balls "
          f"({displaced / max(plan.balls_moved, 1):.1f}x more)")


if __name__ == "__main__":
    main()
