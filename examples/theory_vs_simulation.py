#!/usr/bin/env python
"""Every analytical result of Section 3, checked against live simulation.

For each theorem/observation the script builds a system satisfying the
hypotheses, runs the real simulator, and prints predicted bound vs measured
maximum load.  This is the fastest way to see the paper's analysis at work
(and the template for checking your own bin arrays with the library).

Run:  python examples/theory_vs_simulation.py
"""

import numpy as np

from repro.bins import big_small_split, two_class_bins, uniform_bins
from repro.core import coupled_domination_run, simulate
from repro.io import ascii_table
from repro.sampling import ThresholdProbability
from repro.theory import (
    observation1_bound,
    observation2_bound,
    theorem1_bound,
    theorem2_bound,
    theorem3_bound,
    theorem5_bound,
)

SEED = 31


def mean_max(bins, reps=5, **kwargs):
    return float(np.mean([simulate(bins, seed=(SEED, r), **kwargs).max_load for r in range(reps)]))


def main() -> None:
    rows = []

    # Observation 1: big bins stay below load 4.
    bins = two_class_bins(900, 100, 1, 64)
    res = simulate(bins, seed=SEED)
    rows.append((
        "Observation 1 (big-bin load)",
        observation1_bound(),
        res.max_load_of_class(64),
    ))

    # Theorem 1 via clause (2): C_s small relative to (n ln n)^(2/3).
    bins = two_class_bins(100, 900, 1, 50)
    rows.append(("Theorem 1 (kappa=1)", theorem1_bound(1.0), mean_max(bins)))

    # Theorem 2: C_s below C^((d-1)/d) (log C)^(1/d).
    bins = two_class_bins(50, 950, 1, 40)
    rows.append(("Theorem 2 (kappa=1)", theorem2_bound(1.0), mean_max(bins)))

    # Theorem 3: the general lnln(n)/ln(d) + O(1) bound.
    bins = two_class_bins(2000, 2000, 1, 10)
    rows.append((
        "Theorem 3 (const=2)",
        theorem3_bound(bins.n, 2, constant=2.0),
        mean_max(bins),
    ))

    # Observation 2: uniform capacity c = 8.
    n, c = 4000, 8
    rows.append((
        "Observation 2 (c=8)",
        observation2_bound(c * n, n, c),
        mean_max(uniform_bins(n, c)),
    ))

    # Theorem 5: threshold distribution over the q-capacity half.
    n, q = 1000, 8
    bins = two_class_bins(n // 2, n // 2, 1, q)
    rows.append((
        "Theorem 5 (k=1, alpha=1/2)",
        theorem5_bound(1.0, 0.5, q, n),
        mean_max(bins, probabilities=ThresholdProbability(q)),
    ))

    print(ascii_table(
        ["result", "predicted bound", "measured max load"],
        rows,
        float_format="{:.3f}",
    ))

    # Lemma 1: the coupled unit-bin process dominates.
    bins = two_class_bins(200, 200, 1, 6)
    dominated = all(
        coupled_domination_run(bins, seed=s).q_dominates_max for s in range(10)
    )
    print(f"\nLemma 1 coupling (10 runs): unit-bin process dominated the "
          f"non-uniform one in {'all' if dominated else 'NOT all'} runs")

    split = big_small_split(bins)
    print(f"(system split at threshold {split.threshold:.2f}: "
          f"{split.n_big} big bins carrying C_b={split.big_capacity}, "
          f"{split.n_small} small bins carrying C_s={split.small_capacity})")


if __name__ == "__main__":
    main()
