#!/usr/bin/env python
"""Load balancing on a consistent-hashing ring (the paper's motivation).

The introduction motivates non-uniform balls-into-bins games with P2P
networks: Chord-style consistent hashing assigns each peer an arc of the
ring, and arc lengths — hence request probabilities — are skewed by up to a
log(n) factor.  This example measures that skew, then compares three
allocation strategies for m requests:

1. plain consistent hashing (1 probe — the d=1 game over arcs);
2. Byers et al.'s two-point scheme (2 probes, peers as unit bins);
3. this paper's capacity-aware protocol (2 probes, arc lengths as
   capacities, Algorithm 1's selection).

It also routes lookups through a real Chord finger-table overlay to show
the O(log n) hop cost that makes extra probes affordable.

Run:  python examples/p2p_ring.py
"""

import math

import numpy as np

from repro.p2p import ChordNetwork, ConsistentHashRing, allocate_requests

N_PEERS = 250
REQUESTS = 25_000
SEED = 99


def main() -> None:
    ring = ConsistentHashRing.random(N_PEERS, seed=SEED)
    print(ring)
    print(
        f"arc imbalance: max arc = {ring.arc_imbalance():.2f}x the average "
        f"(paper cites up to log n ~ {math.log(N_PEERS):.1f}x)\n"
    )

    # 1. Plain consistent hashing: requests follow the arc skew directly.
    plain = allocate_requests(ring, REQUESTS, d=1, seed=SEED)
    # 2. Byers et al.: two probes, balance raw request counts.
    byers = allocate_requests(ring, REQUESTS, d=2, seed=SEED)
    # 3. This paper: arcs as capacities, Algorithm 1 over the probed peers.
    aware = allocate_requests(ring, REQUESTS, d=2, capacity_aware=True, seed=SEED)

    avg = REQUESTS / N_PEERS
    print(f"{REQUESTS} requests over {N_PEERS} peers (avg {avg:.0f}/peer):")
    print(f"  plain hashing (d=1):      max requests on a peer = {plain.max_requests}"
          f"  ({plain.max_requests / avg:.2f}x average)")
    print(f"  Byers et al.  (d=2):      max requests on a peer = {byers.max_requests}"
          f"  ({byers.max_requests / avg:.2f}x average)")
    print(f"  capacity-aware (d=2):     max load (requests/arc-capacity) = "
          f"{aware.max_load:.3f} (optimum ~ {REQUESTS / aware.capacities.sum():.3f})")

    # The capacity-aware view deliberately loads big-arc peers more *in
    # absolute terms* while keeping per-capacity load flat:
    corr = np.corrcoef(aware.capacities, aware.counts)[0, 1]
    print(f"  correlation(arc capacity, requests) = {corr:.3f} "
          "(big peers absorb proportionally more)\n")

    # Chord overlay: each probe costs O(log n) routing hops.
    net = ChordNetwork([f"peer-{i}" for i in range(N_PEERS)], bits=32)
    hops = [net.lookup(f"key-{k}").hops for k in range(2_000)]
    print(f"Chord routing over {N_PEERS} nodes:")
    print(f"  mean hops = {np.mean(hops):.2f}, p99 = {np.percentile(hops, 99):.0f}, "
          f"log2(n) = {math.log2(N_PEERS):.1f}")
    print("  -> a second probe costs one more O(log n) lookup and buys the "
          "exponential max-load drop above")


if __name__ == "__main__":
    main()
