#!/usr/bin/env python
"""A replicated DHT under churn — the live version of the paper's motivation.

Builds a key-value DHT over a consistent-hashing ring, loads it with keys
two ways (plain successor placement vs the Byers et al. d-point scheme the
related work analyses), then subjects the better one to membership churn
and measures how little data each join/leave moves.

Run:  python examples/dht_churn.py
"""

import numpy as np

from repro.p2p import DHT, run_churn

PEERS = 60
KEYS = 3000
SEED = 17


def main() -> None:
    # --- placement skew: 1 point vs d points ---------------------------
    plain = DHT([f"peer-{i}" for i in range(PEERS)], replication=2)
    balanced = DHT([f"peer-{i}" for i in range(PEERS)], replication=2)
    for k in range(KEYS):
        plain.store(f"key-{k}")
        balanced.store_d_choice(f"key-{k}", d=2)

    avg = KEYS / PEERS
    print(f"{KEYS} keys over {PEERS} peers (avg {avg:.0f} primaries/peer):")
    print(f"  successor placement:  max/avg primary skew = {plain.skew():.2f}x")
    print(f"  2-point placement:    max/avg primary skew = {balanced.skew():.2f}x")
    print("  (the d-point scheme flattens the log(n) arc skew, exactly the "
          "related-work result the paper builds on)\n")

    # --- churn ----------------------------------------------------------
    trace = run_churn(balanced, events=40, join_probability=0.5, seed=SEED)
    moved = trace.moved_series()
    print(f"40 membership events (joins and leaves) on the 2-point DHT:")
    print(f"  copies moved per event: mean {moved.mean():.1f}, "
          f"median {np.median(moved):.0f}, max {moved.max()}")
    print(f"  total copies stored: {2 * KEYS} "
          f"-> one event touches {100 * moved.mean() / (2 * KEYS):.1f}% of the data")
    print(f"  worst primary skew seen during churn: {trace.max_skew:.2f}x")
    print("\n  a mod-N hash table would remap ~100% of keys per membership "
          "change; consistent hashing pays ~1/n — this is why the paper's "
          "non-uniform-bins model matters in practice")


if __name__ == "__main__":
    main()
