#!/usr/bin/env python
"""Quickstart: the paper's model in five minutes.

Builds a heterogeneous bin array, throws m = C balls with the greedy
2-choice protocol (Algorithm 1), and compares the result against the
single-choice baseline and the analytical bound of Theorem 3.

Run:  python examples/quickstart.py
"""

from repro import (
    one_choice,
    simulate,
    theorem3_bound,
    two_class_bins,
)
from repro.analysis import per_class_max_loads
from repro.theory import applicable_theorems


def main() -> None:
    # A system of 500 small disks (capacity 1) and 500 big disks
    # (capacity 10) — the paper's Figure 6 setting at 50% large bins.
    bins = two_class_bins(500, 500, small_capacity=1, large_capacity=10)
    print(bins)
    print(f"total capacity C = {bins.total_capacity}\n")

    # Throw m = C balls with d = 2 choices, probabilities proportional to
    # capacity, max-capacity tie-breaking (the paper's Algorithm 1).
    result = simulate(bins, seed=2026)
    print("greedy 2-choice (Algorithm 1):")
    print(f"  max load      = {result.max_load:.3f}")
    print(f"  average load  = {result.average_load:.3f}  (optimum)")
    print(f"  gap           = {result.gap:.3f}")
    for cap, ml in sorted(per_class_max_loads(result.counts, bins.capacities).items()):
        print(f"  max load in capacity-{cap} bins: {ml:.3f}")

    # The single-choice baseline shows what the second choice buys.
    baseline = one_choice(bins, seed=2026)
    print("\nsingle-choice baseline:")
    print(f"  max load      = {baseline.max_load:.3f}")

    # Theorem 3 bounds the greedy maximum by lnln(n)/ln(d) + O(1).
    bound = theorem3_bound(bins.n, d=2, constant=2.0)
    print(f"\nTheorem 3 bound (constant=2): {bound:.3f}")
    assert result.max_load <= bound, "theorem violated?!"

    # Which of the paper's theorems cover this system?
    print("\napplicable theorems:")
    for report in applicable_theorems(bins):
        status = "yes" if report.applies else "no"
        print(f"  {report.theorem:12s} {status}")

    # Repeated figure runs are cache hits through the result store: the
    # same request (experiment, scale, seed, engine, overrides) maps to the
    # same content address, so the second run does zero simulation work.
    # The CLI front ends are `repro run fig02 --store` and
    # `repro sweep fig02,fig06 --seeds 1,2 --engines scalar,ensemble --store`
    # (the store location is the --store DIR / $REPRO_STORE knob, default
    # ./.repro-store; a killed sweep resumes from block checkpoints).
    import tempfile

    from repro.experiments import run_experiment
    from repro.io import ResultStore

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        run_experiment("fig02", seed=2026, repetitions=8, store=store)
        run_experiment("fig02", seed=2026, repetitions=8, store=store)  # hit
        stats = store.stats()
        print(f"\nresult store: {stats.entries} entry, "
              f"{stats.hits} hit / {stats.misses} miss")

    # Adaptive precision: make the repetition count a *maximum* instead of
    # a fixed burn.  With a precision target the ensemble run stops at the
    # first block boundary where every monitored series' batch-means CI
    # half-width meets the target — the CLI spelling is
    # `repro run fig02 --engine ensemble --precision rel=0.05,conf=0.95`.
    from repro.analysis import PrecisionTarget

    result = run_experiment(
        "fig02", seed=2026, engine="ensemble", repetitions=1024,
        precision=PrecisionTarget.parse("rel=0.05,conf=0.95"),
    )
    adaptive = result.extra["adaptive"]
    print(f"adaptive run: used {adaptive['replications_used']} of "
          f"{adaptive['replication_budget']} budgeted replications "
          f"(early stop: {adaptive['early_stopped']})")

    # Kernel backends: dispatch order is compiled > wavefront > per-ball,
    # and no choice ever changes a number (the tiers are bit-identical).
    # REPRO_BACKEND=auto (default) uses the numba-jitted compiled tier
    # exactly when numba is installed (`pip install -e ".[compiled]"`);
    # REPRO_BACKEND=numpy/compiled — or forced_backend(...) — pins a tier.
    from repro.core import HAVE_NUMBA, forced_backend

    with forced_backend("numpy"):
        ref = simulate(bins, seed=2026)
    with forced_backend("compiled"):  # jitted with numba, else interpreter
        comp = simulate(bins, seed=2026)
    assert (ref.counts == comp.counts).all(), "backends must be bit-identical"
    print(f"\nbackends agree bit-for-bit (numba available: {HAVE_NUMBA})")

    # Threads: the compiled tier's prange kernels parallelise over
    # replications only — each thread owns whole replication rows, so no
    # thread budget can change a number either.  REPRO_THREADS=auto
    # (default) resolves to min(cores, R) once a run clears the work-size
    # floor; an explicit N pins the budget (1 = the serial kernels), and
    # pool/fabric workers stay at 1 thread unless the driver forces more,
    # so workers x threads never oversubscribes the machine.  The CLI
    # spelling is `repro run fig01 --engine ensemble --threads 4`.
    from repro.core import forced_threads, simulate_ensemble

    with forced_backend("compiled"):
        with forced_threads(1):
            serial_ens = simulate_ensemble(bins, repetitions=8, seed=2026)
        with forced_threads(4):  # prange under numba, plain range without
            threaded = simulate_ensemble(bins, repetitions=8, seed=2026)
    assert (serial_ens.counts == threaded.counts).all(), (
        "thread budgets must be bit-identical"
    )
    print("1-thread and 4-thread compiled runs match bit-for-bit")

    # Distributed sweep fabric: the same run, broker-leased block by block
    # to a fleet of worker processes — and still bit-identical, because
    # block boundaries and child seeds depend only on (seed, repetitions,
    # block_size), never on which worker ran what (or died trying; parked
    # block results survive worker crashes and resume by content address).
    # The CLI spelling is `repro sweep fig02 --fabric 4 --store DIR`.
    from repro.runtime import FabricSession

    serial = run_experiment("fig02", seed=2026, engine="ensemble",
                            repetitions=64)
    with FabricSession(workers=2) as fabric:
        with fabric.activate():
            fabbed = run_experiment("fig02", seed=2026, engine="ensemble",
                                    repetitions=64)
    assert all(
        serial.series[k].tobytes() == fabbed.series[k].tobytes()
        for k in serial.series
    ), "fabric must be bit-identical to serial"
    print("2-worker fabric run matches the serial run bit-for-bit")

    # Live allocation service: an open-loop trace (Zipf popularity,
    # diurnal arrival rate) replayed against the d-choice allocator with
    # bounded-staleness load views (decisions see counts frozen every
    # `refresh_every` requests — the rounds-module regime, live) and churn
    # interleaved by arrival time.  Same seed + trace + churn schedule =>
    # bit-identical placement digest, every run, any pace.  The CLI
    # spellings are `repro replay --requests 10000 --churn-events 4` and
    # `repro serve --port 7421` (line-delimited JSON: alloc/stats/churn/
    # ping).
    from repro.service import (
        AllocationService,
        TraceSpec,
        generate_churn_schedule,
        generate_trace,
    )

    trace = generate_trace(TraceSpec(
        requests=3000, users=10_000, objects=2_000, rate=1_000.0, seed=2026,
    ))
    schedule = generate_churn_schedule(4, trace.duration, seed=2026)

    def replay(d):
        svc = AllocationService([f"peer-{i}" for i in range(12)], d=d,
                                refresh_every=64, seed=2026)
        return svc.replay(trace, schedule)

    one, two, again = replay(1), replay(2), replay(2)
    assert again.placement_digest == two.placement_digest, (
        "service replay must be deterministic"
    )
    assert two.max_load < one.max_load, "d=2 must beat plain hashing"
    print(f"service replay: d=1 max load {one.max_load} -> d=2 "
          f"{two.max_load} ({two.joins} joins/{two.leaves} leaves "
          f"mid-trace), digest reproducible")

    # Crash safety: with a write-ahead log attached, every placement and
    # churn decision is durably framed (CRC + fsync) before the state
    # mutates, so a service killed mid-trace recovers by replaying the log
    # — the recovered instance resumes the *same* RNG streams and digest
    # chain, and finishing the trace lands bit-identical to a run that
    # never died.  The CLI spellings are `repro serve --wal svc.wal`
    # (recovers automatically from a populated log) and
    # `repro recover svc.wal` (offline inspection).
    from repro.service import WriteAheadLog

    keys = list(trace.keys())

    def alloc_all(svc, keys):
        for key in keys:
            svc.allocate(key)

    uninterrupted = AllocationService(
        [f"peer-{i}" for i in range(12)], d=2, refresh_every=64, seed=2026)
    alloc_all(uninterrupted, keys)

    with tempfile.TemporaryDirectory() as tmp:
        wal_path = f"{tmp}/svc.wal"
        doomed = AllocationService(
            [f"peer-{i}" for i in range(12)], d=2, refresh_every=64,
            seed=2026, wal=WriteAheadLog(wal_path))
        alloc_all(doomed, keys[:1500])
        doomed.close_wal()  # the "crash": abandon the instance mid-trace

        survivor = AllocationService.recover(wal_path)
        alloc_all(survivor, keys[1500:])
        assert (survivor.placement_digest()
                == uninterrupted.placement_digest()), (
            "crashed-and-recovered must equal never-crashed, bit for bit"
        )
        print(f"WAL recovery: killed at 1500/{len(keys)} requests, "
              f"replayed {survivor.recovered_records} log records, "
              f"finished bit-identical to the uninterrupted run")


if __name__ == "__main__":
    main()
