#!/usr/bin/env python
"""Operating a heterogeneous storage cluster with the paper's protocol.

An operator's view of the model: a cluster of mixed-generation disks, a
population of objects with Zipf read popularity, and four placement
policies to choose from.  The script compares fill imbalance (the paper's
max load) and read imbalance, then plays a capacity-expansion event and
shows what a minimum-migration rebalance saves over re-placing everything.

Run:  python examples/storage_cluster.py
"""

from repro.io import ascii_table
from repro.storage import (
    Cluster,
    GreedyTwoChoice,
    LeastLoaded,
    RoundRobinBySlots,
    SingleChoice,
    compare_strategies,
    expansion_study,
    unit_objects,
)

SEED = 404


def main() -> None:
    # Three disk generations: 40 old 1x disks, 20 mid 4x, 10 new 16x.
    cluster = (
        Cluster.homogeneous(40, 1)
        .expand(20, 4)
        .expand(10, 16)
    )
    print(cluster)
    objects = unit_objects(cluster.total_capacity, zipf_s=1.1, rng=SEED)
    print(f"{objects.count} unit objects, Zipf(1.1) read popularity\n")

    comparison = compare_strategies(
        [GreedyTwoChoice(), SingleChoice(), RoundRobinBySlots(), LeastLoaded()],
        objects,
        cluster,
        repetitions=10,
        seed=SEED,
    )
    print(ascii_table(
        ["strategy", "max fill", "fill imbalance", "read imbalance"],
        comparison.table_rows(),
        float_format="{:.3f}",
    ))
    print(f"\nbest by max fill: {comparison.best_by('max_fill')} "
          "(round-robin/least-loaded are stateful coordinators; the paper's "
          "greedy-2-choice gets within a whisker with two random probes)\n")

    # Expansion: 10 more 16x disks arrive.
    study = expansion_study(
        cluster, objects, new_disks=10, new_capacity=16, seed=SEED + 1
    )
    print("expansion event: +10 disks of capacity 16")
    print(f"  fill before:               max {study.before.max_fill:.3f}")
    print(f"  fill after rebalance:      max {study.after_incremental.max_fill:.3f}")
    print(f"  fill after re-place:       max {study.after_scratch.max_fill:.3f}")
    print(f"  balls moved (incremental): {study.balls_moved_incremental}")
    print(f"  balls displaced (scratch): {study.balls_displaced_scratch:.0f}")
    print(f"  migration saved:           {100 * study.migration_savings:.0f}%")


if __name__ == "__main__":
    main()
