#!/usr/bin/env python
"""Choosing the selection probabilities (paper Section 4.5 and Theorem 5).

Proportional selection (p_i = c_i / C) is natural but not always optimal.
This example reproduces the paper's two findings at example scale:

* **power exponents** — for an array of 50 capacity-1 and 50 capacity-3
  bins, p ~ c^t with t ~ 2.1 beats t = 1 (Figures 17/18);
* **threshold routing** (Theorem 5) — when a constant fraction of bins has
  capacity Omega(lnln n), ignoring the small bins entirely achieves a
  constant maximum load.

Run:  python examples/custom_probabilities.py
"""

import numpy as np

from repro.bins import two_class_bins
from repro.core import simulate
from repro.io import ascii_plot
from repro.sampling import PowerProbability, ThresholdProbability
from repro.theory import theorem5_applies, theorem5_bound

REPS = 400
SEED = 5


def mean_max_load(bins, reps, probabilities, seed_tag):
    return float(
        np.mean(
            [
                simulate(bins, probabilities=probabilities, seed=(SEED, seed_tag, r)).max_load
                for r in range(reps)
            ]
        )
    )


def main() -> None:
    # --- Part 1: the exponent sweep (Figures 17/18) --------------------
    bins = two_class_bins(50, 50, 1, 3)
    print(f"array: {bins}  (the paper's x = 3 column)\n")
    t_grid = np.round(np.arange(0.0, 3.51, 0.25), 3)
    curve = np.asarray(
        [mean_max_load(bins, REPS, PowerProbability(t), i) for i, t in enumerate(t_grid)]
    )
    print(ascii_plot(
        t_grid, {"mean max load": curve},
        title="capacities 1 and 3: max load vs probability exponent t",
        x_label="t  (t=1 is proportional)", height=14,
    ))
    best_t = float(t_grid[int(np.argmin(curve))])
    print(f"\nbest exponent on this grid: t* = {best_t:.2f} "
          f"(paper reports ~2.1 at 1,000,000 reps)")
    print(f"max load at t=1: {curve[t_grid == 1.0][0]:.3f}  "
          f"at t*: {curve.min():.3f}\n")

    # --- Part 2: Theorem 5's threshold distribution --------------------
    n = 1000
    q = 8
    bins = two_class_bins(n // 2, n // 2, 1, q)
    report = theorem5_applies(bins, q=q)
    print(report.explain())

    proportional = mean_max_load(bins, 30, "proportional", 9001)
    threshold = mean_max_load(bins, 30, ThresholdProbability(q), 9002)
    bound = theorem5_bound(k=1.0, alpha=0.5, q=q, n=n)
    print(f"\nproportional selection: mean max load = {proportional:.3f}")
    print(f"threshold selection:    mean max load = {threshold:.3f}")
    print(f"Theorem 5 bound (k/alpha + lnln(alpha n)/q): {bound:.3f}")
    print("-> ignoring the small bins keeps every load constant; the small "
          "bins simply store nothing")


if __name__ == "__main__":
    main()
