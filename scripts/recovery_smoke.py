#!/usr/bin/env python
"""Crash-recovery smoke: SIGKILL mid-trace, WAL restart, bit-identical digest.

The end-to-end gate for the crash-safe serving layer (``make check``):

1. replay the request/churn sequence **in process** — the uninterrupted
   reference digest and per-peer counts;
2. start ``repro serve --wal`` as a subprocess with a fault plan that
   (a) drops the connection after applying one request (the lost-reply
   case) and (b) ``SIGKILL``s the server at a later request — no
   shutdown handler, no flush-on-exit, connections torn mid-flight;
3. a watchdog restarts ``repro serve`` on the same port from the same
   WAL the instant the first process dies;
4. the retrying client drives the whole trace through the outage —
   timeouts, reconnects, and sequence-id dedup are what keep the
   transcript exactly-once;
5. require the final placement digest and per-peer counts **bit-for-bit
   equal** to the uninterrupted reference, and an offline
   ``AllocationService.recover`` of the final WAL to agree again.

Exit code 0 means every check passed.  Budgeted at ~5 seconds (two
subprocess interpreter start-ups dominate).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(SRC))

from repro.service import (
    AllocationService,
    ChurnAction,
    RetryingClient,
    TraceSpec,
    generate_trace,
)

SEED = 20260808
PEERS = 8
SPEC = TraceSpec(
    requests=420, users=1_000, objects=400, zipf_s=1.1, rate=1_000.0, seed=SEED
)
D = 2
REFRESH_EVERY = 32
#: Churn ops the client issues before the request at these trace indices.
CHURN_AT = {100: "join", 180: "leave"}
#: Wire-request index whose reply is dropped after applying (lost reply —
#: the retry must be answered from the dedup table, not re-placed).
DROP_AFTER = 140
#: Wire-request index at which server 1 SIGKILLs itself.
KILL_AT = 260


def _reference(keys):
    """The uninterrupted in-process run."""
    service = AllocationService(
        [f"peer-{i}" for i in range(PEERS)],
        d=D, refresh_every=REFRESH_EVERY, seed=SEED,
    )
    for i, key in enumerate(keys):
        if i in CHURN_AT:
            service.apply_churn(ChurnAction(time=0.0, kind=CHURN_AT[i]))
        service.allocate(key)
    stats = service.stats()
    return stats["placement_digest"], stats["load"]["per_peer"]


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _serve_cmd(port: int, wal: Path, fault_plan: dict | None) -> list[str]:
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1", "--port", str(port),
        "--peers", str(PEERS), "--d", str(D),
        "--refresh-every", str(REFRESH_EVERY), "--seed", str(SEED),
        "--wal", str(wal),
    ]
    if fault_plan is not None:
        cmd += ["--fault-plan", json.dumps(fault_plan)]
    return cmd


def main() -> int:
    started = time.perf_counter()
    trace = generate_trace(SPEC)
    keys = list(trace.keys())
    ref_digest, ref_loads = _reference(keys)
    print(f"uninterrupted reference: digest {ref_digest[:16]}...")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))

    with tempfile.TemporaryDirectory(prefix="recovery-smoke-") as tmp:
        wal = Path(tmp) / "service.wal"
        port = _free_port()
        plan = {"drop_after": [DROP_AFTER], "kill_at": KILL_AT}
        proc1 = subprocess.Popen(_serve_cmd(port, wal, plan), env=env)

        # The watchdog restarts from the WAL the moment server 1 dies —
        # the client meanwhile retries into the outage window.
        outage = {}

        def watchdog():
            proc1.wait()
            outage["rc"] = proc1.returncode
            outage["proc2"] = subprocess.Popen(
                _serve_cmd(port, wal, None), env=env)

        threading.Thread(target=watchdog, daemon=True).start()

        proc2 = None
        try:
            with RetryingClient(
                ("127.0.0.1", port), client_id="smoke", timeout=1.0,
                max_attempts=60, backoff_base=0.05, backoff_cap=0.5,
                jitter_seed=SEED,
            ) as client:
                for i, key in enumerate(keys):
                    if i in CHURN_AT:
                        client.churn(CHURN_AT[i])
                    client.alloc(key)
                stats = client.stats()
                retries = client.retries
                dups = client.dup_replies
            proc2 = outage.get("proc2")

            if outage.get("rc") != -signal.SIGKILL:
                print(f"RECOVERY SMOKE FAILURE: server 1 exited {outage.get('rc')!r}, "
                      f"expected -SIGKILL", file=sys.stderr)
                return 1
            if retries < 1 or dups < 1:
                print(f"RECOVERY SMOKE FAILURE: expected retries and a dedup "
                      f"hit through the outage (retries={retries}, "
                      f"dup_replies={dups})", file=sys.stderr)
                return 1
            wire = (stats["placement_digest"], stats["load"]["per_peer"])
            if wire != (ref_digest, ref_loads):
                print("RECOVERY SMOKE FAILURE: post-crash transcript diverged "
                      f"from the uninterrupted reference (digest "
                      f"{wire[0][:16]}... vs {ref_digest[:16]}...)",
                      file=sys.stderr)
                return 1
            print(f"crashed-and-recovered == uninterrupted: digest and "
                  f"per-peer counts bit-identical through {retries} "
                  f"retries ({dups} dedup hit(s); "
                  f"{stats['wal']['recovered']} WAL record(s) recovered)")
        finally:
            proc2 = proc2 or outage.get("proc2")
            if proc2 is not None:
                proc2.terminate()
                proc2.wait(timeout=10)
            if proc1.poll() is None:
                proc1.kill()
                proc1.wait(timeout=10)

        # Offline cross-check: recovering the final WAL in this process
        # must reproduce the same digest and counts a third way.
        offline = AllocationService.recover(wal)
        offline.close_wal()
        if offline.placement_digest() != ref_digest:
            print("RECOVERY SMOKE FAILURE: offline WAL recovery digest "
                  f"{offline.placement_digest()[:16]}... != reference",
                  file=sys.stderr)
            return 1
        offline_loads = offline.stats()["load"]["per_peer"]
        if offline_loads != ref_loads:
            print("RECOVERY SMOKE FAILURE: offline WAL recovery loads diverged",
                  file=sys.stderr)
            return 1
        print(f"offline recover of the final WAL agrees; total "
              f"{time.perf_counter() - started:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
