#!/usr/bin/env bash
# Routine check pipeline (also: `make check`).
#
# Runs, in order:
#   1. the tier-1 test suite (ROADMAP's verify command);
#   2. the quick-mode benchmarks for the ensemble engine: the 5x (fig02)
#      and 3x (fig18) engine floors at R = 64, plus the wavefront-kernel
#      floors on the fig01-scaled n=10^4 configuration (R=16/R=64 over the
#      per-ball ensemble kernel, R=1 over fast.run_batch), the compiled
#      floors and — with numba and >= 4 cores — the 2x compiled-parallel
#      floor at R=256, plus the sweep fabric's dispatch-overhead floor
#      (2-worker fabric within 0.2x of serial on fig02 R=4096, results
#      bit-identical); the run emits BENCH_ensemble.json at the repo root
#      (schema repro.bench_ensemble/2: rows carry threads + cpu_count),
#      validated right after;
#   3. the adaptive-precision smoke (quick-mode bench_adaptive.py): the
#      rel=2% fig02 run must early-stop at <= 50% of the fixed budget,
#      match the fixed-budget estimate, and round-trip the store;
#   4. the result-store round-trip smoke (second fig01 run must be a
#      bit-identical cache hit, >= 10x faster than the compute);
#   5. the sweep-fabric smoke: fig02 over 2 broker-leased workers with
#      one SIGKILLed mid-flight — the lost lease re-queues, the survivor
#      resumes, and the result must be bit-identical to the serial run;
#   6. the allocation-service replay bench (quick mode): one fixed
#      open-loop trace at d=1 and d=2, d=2 must beat the d=1 baseline,
#      emitting BENCH_service.json (schema repro.bench_service/1),
#      validated right after;
#   7. the allocation-service smoke: a tiny trace with one mid-stream
#      churn event driven over the live TCP endpoint — the wire run's
#      placement digest must equal the in-process reference bit for bit,
#      the stats endpoint must answer mid-traffic, and a fault-injected
#      pass (dropped connections + delayed reply) driven by the retrying
#      client must reproduce the same digest with a reproducible retry
#      transcript;
#   8. the crash-recovery smoke: a WAL-backed `repro serve` subprocess
#      SIGKILLed mid-trace, restarted from its write-ahead log, with the
#      client retrying through the outage — the final placement digest
#      and per-peer counts must be bit-identical to the uninterrupted
#      in-process replay (and to an offline `AllocationService.recover`);
#   9. a reduced-budget cross-engine equivalence sweep, run once per
#      *available* backend (numpy always; compiled additionally when numba
#      is importable — without numba the numpy pass already executes the
#      compiled tier's interpreter fallback in its backend checks) —
#      kernel three-way bit-exactness, the wavefront and compiled kernel /
#      driver bit-identity sweeps, the four driver parity sweeps, and the
#      full per-experiment engine matrix with the wavefront forced on/off
#      and the backend forced compiled/numpy per experiment; where numba
#      is present the compiled pass repeats once under REPRO_THREADS=4
#      with --threads (forced 1 vs 2 vs 7 thread identity per experiment),
#      so the prange kernels are exercised under a real thread pool
#      routinely, not just through the numba-less prange=range fallback.
#
# The reduced budgets keep the whole pipeline at ~1 minute so the
# equivalence sweep is exercised routinely instead of only by hand; run
# scripts/check_equivalence.py directly (default or larger --draws /
# --rep-factor) for the full-budget sweep.  Numba compilation is
# disk-cached (njit(cache=True)), so where numba exists the compiled pass
# pays the jit cost once per machine, not once per run.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== quick benchmarks (ensemble engine + wavefront kernel + fabric floors) =="
REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_ensemble.py \
    benchmarks/bench_fabric.py -q

echo "== benchmark records schema check =="
python -c "
from repro.io.benchjson import load_bench_json
payload = load_bench_json('BENCH_ensemble.json')
print(f'BENCH_ensemble.json OK: {len(payload[\"rows\"])} rows, '
      f'{len(payload[\"speedups\"])} speedups')
"

echo "== adaptive-precision smoke (early-stop floors + store round trip) =="
REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_adaptive.py -q

echo "== result-store round-trip smoke =="
python scripts/store_smoke.py

echo "== sweep-fabric smoke (worker kill mid-flight, bit-identical) =="
python scripts/fabric_smoke.py

echo "== allocation-service replay bench (d=2 vs d=1 baseline) =="
REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_service.py -q

echo "== service benchmark records schema check =="
python -c "
from repro.io.benchjson import load_service_bench_json
payload = load_service_bench_json('BENCH_service.json')
ratios = {c['d']: round(c['max_load_ratio_vs_d1'], 3)
          for c in payload['comparisons']}
print(f'BENCH_service.json OK: {len(payload[\"rows\"])} rows, '
      f'max-load ratios vs d=1: {ratios}')
"

echo "== allocation-service smoke (wire digest == in-process, stats live) =="
python scripts/service_smoke.py

echo "== crash-recovery smoke (SIGKILL mid-trace -> WAL restart, bit-identical) =="
python scripts/recovery_smoke.py

BACKENDS="numpy"
if python -c "import numba" 2>/dev/null; then
    BACKENDS="numpy compiled"
fi
for backend in $BACKENDS; do
    echo "== reduced-budget cross-engine equivalence sweep [backend=$backend] =="
    python scripts/check_equivalence.py --draws 60 --driver-trials 8 \
        --backend "$backend"
done

if python -c "import numba" 2>/dev/null; then
    echo "== reduced equivalence sweep under REPRO_THREADS=4 (thread identity) =="
    REPRO_THREADS=4 python scripts/check_equivalence.py --draws 20 \
        --driver-trials 4 --backend compiled --threads
fi

echo "ci.sh: all checks passed"
