#!/usr/bin/env python
"""Allocation-service smoke: deterministic digest through a live endpoint.

The quick-mode gate for the live allocation service (``make check``):

1. replay a tiny open-loop trace (heavy-tailed popularity, one churn
   event mid-trace) **in process** — the reference placement digest;
2. start the asyncio TCP server on an ephemeral port and drive the
   identical request/churn sequence **over the wire**, scraping the
   stats endpoint mid-stream (it must answer while traffic flows) and
   at the end;
3. require the wire run's placement digest and per-peer loads to equal
   the in-process reference **bit for bit** — the service determinism
   contract, exercised across the transport rather than assumed;
4. require a second wire run to reproduce the same digest (no hidden
   per-connection or per-process state).

Exit code 0 means every check passed.  Budgeted at ~2 seconds; the full
service matrix (staleness bounds, churn floors, error paths) lives in
``tests/service/``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import threading
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service import (
    AllocationService,
    ChurnAction,
    TraceSpec,
    generate_trace,
    run_server,
)

SEED = 20260612
PEERS = [f"peer-{i}" for i in range(8)]
SPEC = TraceSpec(
    requests=400, users=1_000, objects=500, zipf_s=1.1, rate=1_000.0, seed=SEED
)
#: The single churn event (a join) fires after this many requests.
CHURN_AFTER = 200


def _fresh_service() -> AllocationService:
    return AllocationService(PEERS, d=2, refresh_every=32, seed=SEED)


def _reference(keys):
    """In-process replay of the request/churn sequence."""
    service = _fresh_service()
    for i, key in enumerate(keys):
        if i == CHURN_AFTER:
            service.apply_churn(ChurnAction(time=0.0, kind="join"))
        service.allocate(key)
    stats = service.stats()
    return stats["placement_digest"], stats["load"]["per_peer"]


def _start_server():
    """Run the asyncio server on a daemon thread; return (host, port)."""
    bound = {}
    ready = threading.Event()

    def runner():
        def announce(addr):
            bound["addr"] = addr
            ready.set()

        try:
            asyncio.run(run_server(_fresh_service(), port=0, ready=announce))
        except Exception as exc:  # pragma: no cover - surfaced via timeout
            bound["error"] = exc
            ready.set()

    threading.Thread(target=runner, daemon=True).start()
    if not ready.wait(timeout=10.0):
        raise RuntimeError("server did not start within 10s")
    if "error" in bound:
        raise RuntimeError(f"server failed to start: {bound['error']}")
    return bound["addr"]


def _wire_run(keys):
    """Drive the sequence over TCP; return (digest, per-peer loads)."""
    host, port = _start_server()
    with socket.create_connection((host, port), timeout=10.0) as conn:
        io = conn.makefile("rw", encoding="utf-8", newline="\n")

        def call(msg):
            io.write(json.dumps(msg) + "\n")
            io.flush()
            reply = json.loads(io.readline())
            if not reply.get("ok"):
                raise RuntimeError(f"server refused {msg!r}: {reply}")
            return reply

        if not call({"op": "ping"}).get("pong"):
            raise RuntimeError("ping did not pong")
        for i, key in enumerate(keys):
            if i == CHURN_AFTER:
                call({"op": "churn", "kind": "join"})
            call({"op": "alloc", "key": key})
            if i == CHURN_AFTER // 2:
                # Mid-stream scrape: the stats endpoint must answer while
                # traffic is in flight.
                mid = call({"op": "stats"})["stats"]
                assert mid["requests"] == i + 1, mid["requests"]
        stats = call({"op": "stats"})["stats"]
    return stats["placement_digest"], stats["load"]["per_peer"]


def main() -> int:
    started = time.perf_counter()
    trace = generate_trace(SPEC)
    keys = list(trace.keys())

    ref_digest, ref_loads = _reference(keys)
    print(f"in-process reference: digest {ref_digest[:16]}..., "
          f"{len(ref_loads)} peers")

    wire_digest, wire_loads = _wire_run(keys)
    if (wire_digest, wire_loads) != (ref_digest, ref_loads):
        print("SERVICE SMOKE FAILURE: wire run diverged from the in-process "
              f"reference (digest {wire_digest[:16]}... vs "
              f"{ref_digest[:16]}...)", file=sys.stderr)
        return 1
    print("wire run == in-process reference (digest and per-peer loads)")

    second_digest, _ = _wire_run(keys)
    if second_digest != ref_digest:
        print("SERVICE SMOKE FAILURE: second wire run not reproducible",
              file=sys.stderr)
        return 1
    print(f"second wire run reproduced the digest; total "
          f"{time.perf_counter() - started:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
