#!/usr/bin/env python
"""Allocation-service smoke: deterministic digest through a live endpoint.

The quick-mode gate for the live allocation service (``make check``):

1. replay a tiny open-loop trace (heavy-tailed popularity, one churn
   event mid-trace) **in process** — the reference placement digest;
2. start the asyncio TCP server on an ephemeral port and drive the
   identical request/churn sequence **over the wire**, scraping the
   stats endpoint mid-stream (it must answer while traffic flows) and
   at the end;
3. require the wire run's placement digest and per-peer loads to equal
   the in-process reference **bit for bit** — the service determinism
   contract, exercised across the transport rather than assumed;
4. require a second wire run to reproduce the same digest (no hidden
   per-connection or per-process state);
5. re-drive the same sequence through a server injected with a seeded
   fault plan (dropped connections before and after the reply, a delayed
   response) using the retrying client — the digest must *still* equal
   the reference (retries never double-place), and a second faulted run
   must reproduce the same retry transcript.

Exit code 0 means every check passed.  Budgeted at ~2 seconds; the full
service matrix (staleness bounds, churn floors, error paths) lives in
``tests/service/``, and the crash/restart path in
``scripts/recovery_smoke.py``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import threading
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service import (
    AllocationService,
    ChurnAction,
    FaultController,
    FaultPlan,
    RetryingClient,
    TraceSpec,
    generate_trace,
    run_server,
)

SEED = 20260612
PEERS = [f"peer-{i}" for i in range(8)]
SPEC = TraceSpec(
    requests=400, users=1_000, objects=500, zipf_s=1.1, rate=1_000.0, seed=SEED
)
#: The single churn event (a join) fires after this many requests.
CHURN_AFTER = 200


def _fresh_service() -> AllocationService:
    return AllocationService(PEERS, d=2, refresh_every=32, seed=SEED)


def _reference(keys):
    """In-process replay of the request/churn sequence."""
    service = _fresh_service()
    for i, key in enumerate(keys):
        if i == CHURN_AFTER:
            service.apply_churn(ChurnAction(time=0.0, kind="join"))
        service.allocate(key)
    stats = service.stats()
    return stats["placement_digest"], stats["load"]["per_peer"]


def _start_server(faults=None):
    """Run the asyncio server on a daemon thread; return (host, port)."""
    bound = {}
    ready = threading.Event()

    def runner():
        def announce(addr):
            bound["addr"] = addr
            ready.set()

        try:
            asyncio.run(run_server(
                _fresh_service(), port=0, ready=announce, faults=faults))
        except Exception as exc:  # pragma: no cover - surfaced via timeout
            bound["error"] = exc
            ready.set()

    threading.Thread(target=runner, daemon=True).start()
    if not ready.wait(timeout=10.0):
        raise RuntimeError("server did not start within 10s")
    if "error" in bound:
        raise RuntimeError(f"server failed to start: {bound['error']}")
    return bound["addr"]


def _wire_run(keys):
    """Drive the sequence over TCP; return (digest, per-peer loads)."""
    host, port = _start_server()
    with socket.create_connection((host, port), timeout=10.0) as conn:
        io = conn.makefile("rw", encoding="utf-8", newline="\n")

        def call(msg):
            io.write(json.dumps(msg) + "\n")
            io.flush()
            reply = json.loads(io.readline())
            if not reply.get("ok"):
                raise RuntimeError(f"server refused {msg!r}: {reply}")
            return reply

        if not call({"op": "ping"}).get("pong"):
            raise RuntimeError("ping did not pong")
        for i, key in enumerate(keys):
            if i == CHURN_AFTER:
                call({"op": "churn", "kind": "join"})
            call({"op": "alloc", "key": key})
            if i == CHURN_AFTER // 2:
                # Mid-stream scrape: the stats endpoint must answer while
                # traffic is in flight.
                mid = call({"op": "stats"})["stats"]
                assert mid["requests"] == i + 1, mid["requests"]
        stats = call({"op": "stats"})["stats"]
    return stats["placement_digest"], stats["load"]["per_peer"]


#: Faults keyed on the wire-request arrival counter (ping is request 0).
FAULT_PLAN = FaultPlan(
    drop_before=(30,), drop_after=(120,), delays=((60, 0.05),)
)


def _faulted_wire_run(keys):
    """Drive the sequence through a fault-injected server via the
    retrying client; return (digest, loads, retries, fault counts)."""
    controller = FaultController(FAULT_PLAN)
    host, port = _start_server(faults=controller)
    with RetryingClient(
        (host, port), client_id="smoke", timeout=2.0, max_attempts=20,
        backoff_base=0.01, backoff_cap=0.05, jitter_seed=SEED,
    ) as client:
        if not client.ping():
            raise RuntimeError("ping did not pong")
        for i, key in enumerate(keys):
            if i == CHURN_AFTER:
                client.churn("join")
            client.alloc(key)
        stats = client.stats()
        retries = client.retries
    return (stats["placement_digest"], stats["load"]["per_peer"],
            retries, dict(controller.counts))


def main() -> int:
    started = time.perf_counter()
    trace = generate_trace(SPEC)
    keys = list(trace.keys())

    ref_digest, ref_loads = _reference(keys)
    print(f"in-process reference: digest {ref_digest[:16]}..., "
          f"{len(ref_loads)} peers")

    wire_digest, wire_loads = _wire_run(keys)
    if (wire_digest, wire_loads) != (ref_digest, ref_loads):
        print("SERVICE SMOKE FAILURE: wire run diverged from the in-process "
              f"reference (digest {wire_digest[:16]}... vs "
              f"{ref_digest[:16]}...)", file=sys.stderr)
        return 1
    print("wire run == in-process reference (digest and per-peer loads)")

    second_digest, _ = _wire_run(keys)
    if second_digest != ref_digest:
        print("SERVICE SMOKE FAILURE: second wire run not reproducible",
              file=sys.stderr)
        return 1
    print("second wire run reproduced the digest")

    f_digest, f_loads, retries, counts = _faulted_wire_run(keys)
    if (f_digest, f_loads) != (ref_digest, ref_loads):
        print("SERVICE SMOKE FAILURE: faulted run diverged from the "
              f"reference (digest {f_digest[:16]}... vs {ref_digest[:16]}...)",
              file=sys.stderr)
        return 1
    if retries < 2:
        print(f"SERVICE SMOKE FAILURE: fault plan injected no retries "
              f"(retries={retries}, counts={counts})", file=sys.stderr)
        return 1
    print(f"faulted run == reference through {retries} retries "
          f"(faults triggered: {counts})")

    again = _faulted_wire_run(keys)
    if again != (f_digest, f_loads, retries, counts):
        print("SERVICE SMOKE FAILURE: faulted run not seed-reproducible "
              f"({again[2]} retries vs {retries}, counts {again[3]} vs "
              f"{counts})", file=sys.stderr)
        return 1
    print(f"faulted run transcript reproduced; total "
          f"{time.perf_counter() - started:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
