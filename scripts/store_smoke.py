#!/usr/bin/env python
"""Store round-trip smoke for CI: second fig01 run must be a fast cache hit.

Runs the same fig01 request twice against a throwaway store and asserts

* the first run computes (miss) and the second is a cache hit,
* the hit does zero simulation work and is >= 10x faster than the compute,
* the two results are bit-identical (series and x-grid byte-for-byte).

Exercised by ``scripts/ci.sh`` / ``make check``.
"""
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import RunRequest, execute_request
from repro.io.store import ResultStore

REQUEST = RunRequest(
    "fig01",
    seed=20260612,
    engine="ensemble",
    overrides={"repetitions": 24, "n": 2000, "capacities": (1, 2, 8)},
)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-store-smoke-") as tmp:
        store = ResultStore(tmp)
        t0 = time.perf_counter()
        first = execute_request(REQUEST, store=store)
        t_miss = time.perf_counter() - t0
        t0 = time.perf_counter()
        second = execute_request(REQUEST, store=store)
        t_hit = time.perf_counter() - t0
        assert not first.cache_hit and second.cache_hit, (
            f"expected miss-then-hit, got {first.cache_hit}/{second.cache_hit}"
        )
        a, b = first.result, second.result
        assert a.x_values.tobytes() == b.x_values.tobytes()
        for name in a.series:
            assert a.series[name].tobytes() == b.series[name].tobytes(), name
        speedup = t_miss / max(t_hit, 1e-9)
        print(
            f"store smoke: miss {t_miss * 1e3:.1f} ms, hit {t_hit * 1e3:.1f} ms "
            f"({speedup:.0f}x), round trip bit-identical"
        )
        assert speedup >= 10.0, (
            f"cache hit only {speedup:.1f}x faster than the compute (floor 10x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
