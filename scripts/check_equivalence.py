#!/usr/bin/env python
"""Cross-engine equivalence smoke check, at a larger budget than the tests.

Runs the randomised three-way kernel sweep (ensemble vs fast vs reference)
and the spawn-mode driver parity sweep from :mod:`repro.core.equivalence`
with a configurable draw budget.  Exit code 0 means every replication of
every draw was bit-identical across engines.

Usage::

    PYTHONPATH=src python scripts/check_equivalence.py            # 400 draws
    PYTHONPATH=src python scripts/check_equivalence.py --draws 2000 --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.equivalence import (
    SweepBudget,
    check_driver_parity,
    check_kernel_equivalence,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--draws", type=int, default=400,
                        help="randomised kernel draws (default 400)")
    parser.add_argument("--driver-trials", type=int, default=40,
                        help="driver parity trials (default 40)")
    parser.add_argument("--seed", type=int, default=0xE25E, help="master seed")
    parser.add_argument("--max-m", type=int, default=200,
                        help="max balls per draw (default 200)")
    parser.add_argument("--max-r", type=int, default=8,
                        help="max lockstep replications per draw (default 8)")
    args = parser.parse_args(argv)

    budget = SweepBudget(draws=args.draws, max_m=args.max_m, max_r=args.max_r)
    started = time.perf_counter()
    try:
        kernel = check_kernel_equivalence(args.seed, budget)
        print(f"kernel equivalence: {kernel} draws OK "
              f"(ensemble == fast == reference, counts + heights)")
        driver = check_driver_parity(args.seed ^ 0xD41E, trials=args.driver_trials)
        print(f"driver parity:      {driver} trials OK "
              f"(simulate_ensemble row r == simulate(seed=child_r))")
    except AssertionError as exc:
        print(f"EQUIVALENCE FAILURE: {exc}", file=sys.stderr)
        return 1
    print(f"all checks passed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
