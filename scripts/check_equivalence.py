#!/usr/bin/env python
"""Cross-engine equivalence smoke check, at a larger budget than the tests.

Runs, from :mod:`repro.core.equivalence`:

* the randomised three-way kernel sweep (ensemble vs fast vs reference);
* the randomised wavefront kernel sweep (conflict-free wave commits vs
  the per-ball ensemble kernel, bit-exact incl. heights) and the
  wavefront driver on/off identity sweep;
* the randomised compiled-backend kernel sweep (jitted — or, without
  numba, interpreter-fallback — loops vs the per-ball ensemble kernel)
  and the backend compiled/numpy driver identity sweep;
* the spawn-mode driver parity sweeps (plain, stale-view batched, weighted
  balls, ring allocation — each lockstep driver vs its scalar counterpart);
* the per-experiment cross-engine matrix (every registered experiment on
  both engines, optionally at a ``--rep-factor`` multiple of the pinned
  repetition counts), each entry also run with the wavefront forced on
  and off, and with the backend forced to compiled and to numpy, under a
  bit-identity requirement.

``--backend MODE`` pins ``REPRO_BACKEND`` for the whole run, so CI can
repeat the sweep once per available backend (see ``scripts/ci.sh``).
``--threads`` additionally requires compiled-tier thread identity (forced
1 vs 2 vs 7 threads, both engines) for every experiment in the matrix.
``--fabric N`` additionally runs every experiment over an N-worker sweep
fabric and requires bit-identity against the local serial run.

Exit code 0 means every replication of every draw was bit-identical across
engines and every experiment's figures agreed within its pinned tolerance.

Usage::

    PYTHONPATH=src python scripts/check_equivalence.py            # 400 draws
    PYTHONPATH=src python scripts/check_equivalence.py --draws 2000 --seed 7
    PYTHONPATH=src python scripts/check_equivalence.py --rep-factor 4
    PYTHONPATH=src python scripts/check_equivalence.py --skip-experiments
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.compiled import BACKEND_MODES, HAVE_NUMBA, set_backend
from repro.core.equivalence import (
    EXPERIMENT_CASES,
    SweepBudget,
    check_backend_driver_identity,
    check_batched_parity,
    check_compiled_kernel_equivalence,
    check_driver_parity,
    check_experiment_backend_identity,
    check_experiment_equivalence,
    check_experiment_wavefront_identity,
    check_fabric_serial_identity,
    check_kernel_equivalence,
    check_ring_parity,
    check_thread_identity,
    check_wavefront_driver_identity,
    check_wavefront_kernel_equivalence,
    check_weighted_parity,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--draws", type=int, default=400,
                        help="randomised kernel draws (default 400)")
    parser.add_argument("--driver-trials", type=int, default=40,
                        help="driver parity trials, per driver (default 40)")
    parser.add_argument("--seed", type=int, default=0xE25E, help="master seed")
    parser.add_argument("--max-m", type=int, default=200,
                        help="max balls per draw (default 200)")
    parser.add_argument("--max-r", type=int, default=8,
                        help="max lockstep replications per draw (default 8)")
    parser.add_argument("--rep-factor", type=int, default=1,
                        help="multiply the per-experiment repetition counts "
                             "of the cross-engine matrix (default 1)")
    parser.add_argument("--skip-experiments", action="store_true",
                        help="skip the per-experiment cross-engine matrix")
    parser.add_argument("--fabric", type=int, default=None, metavar="N",
                        help="also require fabric == serial bit-identity for "
                             "every experiment, over N broker-leased workers "
                             "(default: off; implies the experiment matrix)")
    parser.add_argument("--backend", choices=BACKEND_MODES, default=None,
                        help="pin REPRO_BACKEND for the whole run (default: "
                             "leave the ambient dispatch in force)")
    parser.add_argument("--threads", action="store_true",
                        help="also require compiled-tier thread identity "
                             "(forced 1 vs 2 vs 7 threads, both engines) for "
                             "every experiment in the matrix")
    args = parser.parse_args(argv)

    budget = SweepBudget(draws=args.draws, max_m=args.max_m, max_r=args.max_r)
    started = time.perf_counter()
    if args.backend:
        # The script owns its process, so a plain process-wide override is
        # enough — identity checks still force both sides as they need to.
        set_backend(args.backend)
        jit = "numba" if HAVE_NUMBA else "interpreter fallback"
        print(f"backend pinned:     {args.backend} ({jit})")
    try:
        kernel = check_kernel_equivalence(args.seed, budget)
        print(f"kernel equivalence: {kernel} draws OK "
              f"(ensemble == fast == reference, counts + heights)")
        wavefront = check_wavefront_kernel_equivalence(args.seed ^ 0xAFE1, budget)
        print(f"wavefront kernel:   {wavefront} draws OK "
              f"(run_batch_wavefront == run_batch_ensemble, counts + heights)")
        compiled = check_compiled_kernel_equivalence(args.seed ^ 0xC0DE, budget)
        print(f"compiled kernel:    {compiled} draws OK "
              f"(run_batch_compiled == run_batch_ensemble, counts + heights)")
        wf_driver = check_wavefront_driver_identity(
            args.seed ^ 0x0FF0, trials=args.driver_trials
        )
        print(f"wavefront drivers:  {wf_driver} trials OK "
              f"(forced on == forced off, both engines, snapshots + heights)")
        be_driver = check_backend_driver_identity(
            args.seed ^ 0xBACC, trials=args.driver_trials
        )
        print(f"backend drivers:    {be_driver} trials OK "
              f"(compiled == numpy, both engines, snapshots + heights)")
        driver = check_driver_parity(args.seed ^ 0xD41E, trials=args.driver_trials)
        print(f"driver parity:      {driver} trials OK "
              f"(simulate_ensemble row r == simulate(seed=child_r))")
        batched = check_batched_parity(args.seed ^ 0xBA7C, trials=args.driver_trials)
        print(f"batched parity:     {batched} trials OK "
              f"(simulate_batched_ensemble vs simulate_batched)")
        weighted = check_weighted_parity(args.seed ^ 0x3E16, trials=args.driver_trials)
        print(f"weighted parity:    {weighted} trials OK "
              f"(simulate_weighted_ensemble vs simulate_weighted)")
        ring = check_ring_parity(args.seed ^ 0x21F6, trials=args.driver_trials)
        print(f"ring parity:        {ring} trials OK "
              f"(allocate_requests_ensemble vs allocate_requests)")
        fabric = None
        if args.fabric:
            from repro.runtime.fabric import FabricSession

            fabric = FabricSession(args.fabric)
        if not args.skip_experiments or fabric is not None:
            for experiment_id in sorted(EXPERIMENT_CASES):
                worst = check_experiment_equivalence(
                    experiment_id, rep_factor=args.rep_factor
                )
                tol = EXPERIMENT_CASES[experiment_id].tol
                engines = check_experiment_wavefront_identity(experiment_id)
                backends = check_experiment_backend_identity(experiment_id)
                thread_note = ""
                if args.threads:
                    comparisons = check_thread_identity(experiment_id)
                    thread_note = (f"; threads 1==2==7 "
                                   f"({comparisons} comparisons)")
                fab_note = ""
                if fabric is not None:
                    check_fabric_serial_identity(experiment_id, fabric=fabric)
                    fab_note = f"; fabric=={args.fabric}-worker serial"
                print(f"experiment matrix:  {experiment_id:16s} OK "
                      f"(worst series deviation {worst:.4f} <= tol {tol}; "
                      f"wavefront on==off on {engines} engines; "
                      f"compiled==numpy on {backends} engines"
                      f"{thread_note}{fab_note})")
    except AssertionError as exc:
        print(f"EQUIVALENCE FAILURE: {exc}", file=sys.stderr)
        return 1
    finally:
        if 'fabric' in locals() and fabric is not None:
            fabric.close()
    print(f"all checks passed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
