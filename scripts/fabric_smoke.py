#!/usr/bin/env python
"""Sweep-fabric smoke: kill a worker mid-sweep, finish bit-identically.

The quick-mode gate for the distributed sweep fabric (``make check``):

1. run fig02 (ensemble engine) serially — the reference numbers;
2. run the identical request over a 2-worker broker-leased fabric, and
   SIGKILL one of the workers the moment the first block reducer is
   parked (so the kill is genuinely mid-flight);
3. the dead worker's lease re-queues and the surviving worker resumes
   the remainder of the sweep;
4. require the fabric result to be **bit-identical** to the serial run —
   the fabric clause of the executor seed contract, exercised under a
   worker death rather than assumed.

Exit code 0 means the kill happened and every series matched byte for
byte.  Budgeted at a few seconds; the full worker-death matrix
(SIGSTOP lease expiry, whole-fleet kill + park-file resume, task-failure
caps) lives in ``tests/runtime/test_fabric.py``.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import run_experiment
from repro.runtime import FabricSession

SEED = 20260612
#: 16 blocks of 256: enough flight time to land a mid-sweep kill, small
#: enough to keep the smoke at a few seconds.
REPETITIONS, BLOCK = 4096, 256


def _run(fabric=None):
    kwargs = dict(
        engine="ensemble", seed=SEED, repetitions=REPETITIONS, block_size=BLOCK
    )
    if fabric is None:
        return run_experiment("fig02", **kwargs)
    with fabric.activate():
        return run_experiment("fig02", **kwargs)


def main() -> int:
    started = time.perf_counter()
    serial = _run()
    print(f"serial reference:   fig02 R={REPETITIONS} in "
          f"{time.perf_counter() - started:.2f}s")

    session = FabricSession(workers=2, lease_ttl=3.0)
    killed: list[int] = []
    try:
        victim = session.worker_pids[0]

        def assassin() -> None:
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if any(session.store.root.rglob("block-*.pkl")):
                    break
                time.sleep(0.01)
            try:
                os.kill(victim, signal.SIGKILL)
                killed.append(victim)
            except ProcessLookupError:
                pass

        thread = threading.Thread(target=assassin)
        thread.start()
        t0 = time.perf_counter()
        fabbed = _run(session)
        thread.join()
        print(f"fabric run:         2 workers, 1 SIGKILLed mid-flight "
              f"(pid {killed[0] if killed else '?'}), survivor resumed, "
              f"{time.perf_counter() - t0:.2f}s")
    finally:
        session.close()

    if not killed:
        print("FABRIC SMOKE FAILURE: the kill never fired (no block parked "
              "within 15s)", file=sys.stderr)
        return 1
    for name in serial.series:
        if serial.series[name].tobytes() != fabbed.series[name].tobytes():
            print(f"FABRIC SMOKE FAILURE: series {name!r} differs between "
                  f"serial and fabric runs", file=sys.stderr)
            return 1
    print(f"fabric == serial bit-identically across {len(serial.series)} "
          f"series; total {time.perf_counter() - started:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
