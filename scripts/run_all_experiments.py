"""Run all registered experiments at moderate scale; save CSV/JSON + summary."""
import json, sys, time
from repro.experiments import list_experiments, run_experiment

overrides = {
    "fig01": dict(repetitions=30),
    "fig02": dict(repetitions=400),
    "fig03": dict(repetitions=400),
    "fig04": dict(repetitions=400),
    "fig05": dict(repetitions=200),
    "fig06": dict(repetitions=60, step_pct=2),
    "fig07": dict(repetitions=60, step_pct=2),
    "fig08": dict(repetitions=8),
    "fig09": dict(repetitions=60),
    "fig10": dict(repetitions=400),
    "fig11": dict(repetitions=8),
    "fig12": dict(repetitions=8),
    "fig13": dict(repetitions=8),
    "fig14": dict(repetitions=8, max_bins=1000),
    "fig15": dict(repetitions=8, max_bins=1000, ball_budget=1_500_000),
    "fig16": dict(repetitions=4, n=4000, rounds=100),
    "fig17": dict(repetitions=500, t_grid=tuple(round(1.0+0.1*i,3) for i in range(21))),
    "fig18": dict(repetitions=500),
}
summaries = {}
for spec in list_experiments():
    fid = spec.experiment_id
    t0 = time.time()
    res = run_experiment(fid, seed=20260612, out_dir="results", **overrides.get(fid, {}))
    dt = time.time() - t0
    summaries[fid] = {
        "wall_seconds": round(dt, 1),
        "extra": {k: v for k, v in res.extra.items()},
        "series_summary": {name: dict(zip(("min","max","first","last"), vals))
                            for name, *vals in [(r[0], *r[1:]) for r in res.summary_rows()]},
        "parameters": res.parameters,
    }
    print(f"{fid} done in {dt:.1f}s", flush=True)
json.dump(summaries, open("results/summaries.json","w"), indent=1, default=str)
print("ALL DONE")
