"""Run all registered experiments at moderate scale; save CSV/JSON + summary.

Each run is a declarative RunRequest executed through the result store when
``REPRO_STORE`` is set (re-running the script then only recomputes what the
overrides changed; an interrupted invocation resumes ensemble runs from
their block checkpoints).
"""
import json
import os
import time

from repro.experiments import RunRequest, execute_request, list_experiments

overrides = {
    "fig01": dict(repetitions=30),
    "fig02": dict(repetitions=400),
    "fig03": dict(repetitions=400),
    "fig04": dict(repetitions=400),
    "fig05": dict(repetitions=200),
    "fig06": dict(repetitions=60, step_pct=2),
    "fig07": dict(repetitions=60, step_pct=2),
    "fig08": dict(repetitions=8),
    "fig09": dict(repetitions=60),
    "fig10": dict(repetitions=400),
    "fig11": dict(repetitions=8),
    "fig12": dict(repetitions=8),
    "fig13": dict(repetitions=8),
    "fig14": dict(repetitions=8, max_bins=1000),
    "fig15": dict(repetitions=8, max_bins=1000, ball_budget=1_500_000),
    "fig16": dict(repetitions=4, n=4000, rounds=100),
    "fig17": dict(repetitions=500, t_grid=tuple(round(1.0 + 0.1 * i, 3) for i in range(21))),
    "fig18": dict(repetitions=500),
}
store = os.environ.get("REPRO_STORE") or None
summaries = {}
for spec in list_experiments():
    fid = spec.experiment_id
    request = RunRequest(fid, seed=20260612, overrides=overrides.get(fid, {}))
    t0 = time.time()
    outcome = execute_request(request, out_dir="results", store=store)
    dt = time.time() - t0
    res = outcome.result
    summaries[fid] = {
        "wall_seconds": round(dt, 1),
        "cache_hit": outcome.cache_hit,
        "cache_key": outcome.key,
        "extra": {k: v for k, v in res.extra.items()},
        "series_summary": {name: dict(zip(("min", "max", "first", "last"), vals))
                           for name, *vals in [(r[0], *r[1:]) for r in res.summary_rows()]},
        "parameters": res.parameters,
    }
    status = "cache hit" if outcome.cache_hit else "computed"
    print(f"{fid} {status} in {dt:.1f}s", flush=True)
json.dump(summaries, open("results/summaries.json", "w"), indent=1, default=str)
print("ALL DONE")
