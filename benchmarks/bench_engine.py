"""Micro-benchmarks of the simulation engine itself.

Not a paper figure — these track the throughput of the substrate the
reproduction stands on (balls/second through the sequential core, draws/
second through the samplers) so performance regressions are visible.
"""

import numpy as np
from conftest import BENCH_SEED

from repro.bins import two_class_bins, uniform_bins
from repro.core import simulate
from repro.sampling import AliasSampler, CdfSampler


def test_engine_throughput_d2_uniform(benchmark):
    """Greedy d=2 on 10,000 unit bins, m = n balls per round."""
    bins = uniform_bins(10_000, 1)

    def run():
        return simulate(bins, seed=BENCH_SEED).counts.sum()

    total = benchmark(run)
    assert total == 10_000


def test_engine_throughput_d2_two_class(benchmark):
    """Greedy d=2 on the Figure 6 array (1,000 bins, caps 1 and 10)."""
    bins = two_class_bins(500, 500, 1, 10)

    def run():
        return simulate(bins, seed=BENCH_SEED).counts.sum()

    total = benchmark(run)
    assert total == bins.total_capacity


def test_engine_throughput_d4(benchmark):
    """General-d loop cost relative to the d=2 fast path."""
    bins = uniform_bins(5_000, 2)

    def run():
        return simulate(bins, d=4, seed=BENCH_SEED).counts.sum()

    total = benchmark(run)
    assert total == bins.total_capacity


def test_alias_sampler_bulk_draws(benchmark):
    """1M weighted draws through the alias sampler."""
    weights = np.random.default_rng(0).integers(1, 100, size=10_000)
    sampler = AliasSampler(weights)
    rng = np.random.default_rng(BENCH_SEED)

    out = benchmark(lambda: sampler.sample(1_000_000, rng))
    assert out.size == 1_000_000


def test_cdf_sampler_bulk_draws(benchmark):
    """1M weighted draws through the CDF sampler (alias's O(log n) rival)."""
    weights = np.random.default_rng(0).integers(1, 100, size=10_000)
    sampler = CdfSampler(weights)
    rng = np.random.default_rng(BENCH_SEED)

    out = benchmark(lambda: sampler.sample(1_000_000, rng))
    assert out.size == 1_000_000
