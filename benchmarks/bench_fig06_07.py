"""Figures 6-7 bench: two-class sweep of the large-bin fraction.

Paper series (n = 1,000 bins of capacities 1 and 10, m = C):
Figure 6 — mean max load vs % large bins: ~3 at 0%, plateau ~2 between
10-30%, down to ~1.2 at 100%.
Figure 7 — % of runs with the maximum in a small bin: ~100% early,
crossing 50% near 45%, ~0% beyond ~90%.
"""

from conftest import BENCH_SEED, bench_reps

from repro.experiments import run_experiment


def test_fig06_max_load_sweep(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig06", seed=BENCH_SEED, repetitions=bench_reps(30), step_pct=5
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    curve = result.series["max_load"]
    assert 2.7 <= curve[0] <= 3.4  # standard-game endpoint
    assert curve[-1] <= 1.4  # all-large endpoint
    assert curve[-1] < curve[0]


def test_fig07_max_location_sweep(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig07", seed=BENCH_SEED, repetitions=bench_reps(30), step_pct=5
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    curve = result.series["pct_small_has_max"]
    x = result.x_values
    assert curve[0] == 100.0
    assert curve[-1] == 0.0
    # the 50% crossing falls in the paper's mid-range (roughly 30-70%)
    crossing = x[(curve < 50).argmax()]
    assert 25 <= crossing <= 75
