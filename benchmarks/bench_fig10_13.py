"""Figures 10-13 bench: mixed-array load profiles.

Paper series: sorted load profiles for 32 bins (caps 1/2) and 10,000 bins
(caps 1/8) at fixed class ratios, plus the per-class restrictions.
Expected shape: more large bins -> flatter profiles; large-bin loads stay
below a small constant while small bins carry the maxima.
"""

import numpy as np
import pytest
from conftest import BENCH_SEED, bench_reps

from repro.experiments import run_experiment


def test_fig10_small_mixed_profiles(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment("fig10", seed=BENCH_SEED, repetitions=bench_reps(200)),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    assert result.series["32x2-bins"][0] < result.series["0x2-bins"][0]


def test_fig11_large_mixed_profiles(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment("fig11", seed=BENCH_SEED, repetitions=bench_reps(5)),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    peaks = {name: ys[0] for name, ys in result.series.items()}
    # monotone flattening in the number of 8-bins
    assert (
        peaks["10000x8-bins"]
        < peaks["5000x8-bins"]
        < peaks["0x8-bins"]
    )


@pytest.mark.parametrize("fig_id", ["fig12", "fig13"])
def test_fig12_13_class_restricted_profiles(benchmark, report_series, fig_id):
    result = benchmark.pedantic(
        lambda: run_experiment(fig_id, seed=BENCH_SEED, repetitions=bench_reps(5)),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    for name, ys in result.series.items():
        finite = ys[np.isfinite(ys)]
        if fig_id == "fig12":
            # Observation 1: the capacity-8 bins stay below a small constant
            assert finite[0] < 2.2, name
        else:
            assert finite[0] < 4.0, name
