"""Allocation-service replay benchmark (``BENCH_service.json``).

Replays one fixed open-loop trace (heavy-tailed popularity, diurnal rate,
pinned seed) through the live service at each choice count ``d`` and
records the balls-into-bins outcome — max load, max/mean — plus the
placement-latency percentiles into a schema-validated document at the
repository root, next to ``BENCH_ensemble.json``.  The committed numbers
are the *ratios* against the ``d = 1`` consistent-hashing baseline: the
paper's claim, measured on the service rather than the kernels, is that
``d = 2`` collapses the max-load gap, and the floor asserted here is
simply that the ratio stays below 1 on the pinned trace.

Determinism is asserted in the same run: replaying the identical trace
and seed twice must produce the same placement digest (the service's
determinism contract, checked at bench scale rather than toy scale).

Unlike the figure benches this module writes its document directly — the
session-level ``conftest`` flush belongs to the ensemble-engine floors —
so running ``pytest benchmarks/bench_service.py`` alone refreshes it.
``REPRO_BENCH_QUICK=1`` trims the trace for the CI budget.
"""

import os
import time
from pathlib import Path

from conftest import BENCH_SEED

from repro.io.benchjson import write_service_bench_json
from repro.service import (
    AllocationService,
    TraceSpec,
    WriteAheadLog,
    generate_churn_schedule,
    generate_trace,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Trace size and the ``d`` sweep; quick mode keeps the d=1/d=2 pair that
#: feeds the committed baseline ratio.
REQUESTS = 4_000 if QUICK else 20_000
D_SWEEP = (1, 2) if QUICK else (1, 2, 4)
PEERS = 16
REFRESH_EVERY = 64
CHURN_EVENTS = 4

SPEC = TraceSpec(
    requests=REQUESTS,
    users=100_000,
    objects=10_000,
    zipf_s=1.1,
    rate=2_000.0,
    diurnal_amplitude=0.5,
    diurnal_period=60.0,
    seed=BENCH_SEED,
)


def _replay(trace, schedule, d):
    service = AllocationService(
        [f"peer-{i}" for i in range(PEERS)],
        d=d,
        refresh_every=REFRESH_EVERY,
        seed=BENCH_SEED,
    )
    start = time.perf_counter()
    report = service.replay(trace, schedule)
    seconds = time.perf_counter() - start
    return service, report, seconds


def test_service_replay_records_bench(tmp_path):
    trace = generate_trace(SPEC)
    schedule = generate_churn_schedule(
        CHURN_EVENTS, trace.duration, seed=BENCH_SEED
    )

    rows = []
    reports = {}
    for d in D_SWEEP:
        service, report, seconds = _replay(trace, schedule, d)
        stats = service.stats()
        reports[d] = report
        rows.append({
            "d": d,
            "refresh_every": REFRESH_EVERY,
            "peers": PEERS,
            "max_load": int(report.max_load),
            "mean_load": float(report.mean_load),
            "max_over_mean": float(report.max_over_mean),
            "p50_ms": float(stats["latency"]["p50_ms"]),
            "p99_ms": float(stats["latency"]["p99_ms"]),
            "seconds": float(seconds),
            "placement_digest": report.placement_digest,
        })

    # Determinism contract at bench scale: an identical replay must land
    # on the identical placement digest and final counts.
    _, again, _ = _replay(trace, schedule, 2)
    assert again.placement_digest == reports[2].placement_digest
    assert again.final_loads == reports[2].final_loads

    # Crash-recovery clause at bench scale: the same replay through an
    # attached write-ahead log, recovered offline, is bit-identical to
    # the unlogged runs.  Group commit keeps the fsync cost out of the
    # bench budget — the durability cadence never touches the numbers,
    # so the recorded rows stay WAL-free.
    wal_path = tmp_path / "bench.wal"
    logged = AllocationService(
        [f"peer-{i}" for i in range(PEERS)],
        d=2,
        refresh_every=REFRESH_EVERY,
        seed=BENCH_SEED,
        wal=WriteAheadLog(wal_path, sync_every=1024),
    )
    logged.replay(trace, schedule)
    logged.close_wal()
    recovered = AllocationService.recover(wal_path)
    recovered.close_wal()
    assert recovered.placement_digest() == reports[2].placement_digest
    assert recovered.stats()["load"]["per_peer"] == reports[2].final_loads

    baseline = reports[1].max_load
    comparisons = [
        {"d": d, "max_load_ratio_vs_d1": reports[d].max_load / baseline}
        for d in D_SWEEP
        if d != 1
    ]
    # The service-level two-choice floor: d >= 2 must beat the d = 1
    # consistent-hashing baseline on the pinned trace.
    for c in comparisons:
        assert c["max_load_ratio_vs_d1"] < 1.0, c

    path = Path(__file__).resolve().parents[1] / "BENCH_service.json"
    write_service_bench_json(
        path,
        quick=QUICK,
        trace={
            "requests": SPEC.requests,
            "objects": SPEC.objects,
            "users": SPEC.users,
            "rate": SPEC.rate,
            "seed": SPEC.seed,
            "digest": trace.digest(),
        },
        rows=rows,
        comparisons=comparisons,
    )
    print(f"\nservice bench written to {path}")
    for row in rows:
        print(
            f"  d={row['d']}: max={row['max_load']} "
            f"max/mean={row['max_over_mean']:.3f} "
            f"p50={row['p50_ms']:.3f}ms p99={row['p99_ms']:.3f}ms "
            f"({row['seconds']:.2f}s)"
        )
