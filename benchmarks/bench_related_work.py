"""Related-work bench: the ring game the paper generalises.

Byers et al. [7, 9]: on a consistent-hashing ring, the max request count
drops from the log-skew level at d=1 to the two-choice level at d=2; the
paper's capacity-aware accounting drives the normalised max load toward 1.
"""

from conftest import BENCH_SEED, bench_reps

from repro.experiments import run_experiment


def test_rw_ring_d_sweep(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "rw_ring", seed=BENCH_SEED, repetitions=bench_reps(20),
            n_peers=200, requests_per_peer=20, d_values=(1, 2, 3),
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    plain = result.series["plain peers (max/avg requests)"]
    aware = result.series["capacity-aware (max/avg load)"]
    # d=1 reflects the arc skew (well above 2x the average)
    assert plain[0] > 2.0
    # the second probe collapses the skew in both accountings
    assert plain[1] < 0.6 * plain[0]
    assert aware[1] < 0.6 * aware[0]
    # capacity-aware at d>=2 is close to perfect
    assert aware[1] < 1.3


def test_abl_weighted_size_variability(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "abl_weighted", seed=BENCH_SEED, repetitions=bench_reps(20), n=200,
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    curve = result.series["max_over_avg_load"]
    # unit sizes sit in the two-choice band
    assert 1.0 <= curve[0] <= 2.5
    # variability strictly degrades balance — at high CV a single huge
    # ball dominates its bin, so the normalised max grows without a
    # constant cap (the honest limit of the unit-ball guarantee)
    assert all(b >= a - 0.05 for a, b in zip(curve, curve[1:]))
    assert curve[-1] > curve[0]
