"""Figures 14-15 bench: dynamically growing storage systems.

Paper series: mean max load vs number of disks (2 -> 1,000 in batches of
20) for linear growth offsets a = 1, 2, 4, 6 and exponential factors
b = 1.05, 1.1, 1.2, 1.4, each against the flat all-capacity-2 baseline.
Expected shape: every growth curve decreases with system size while the
baseline stays near 1.8-2; exponential eventually beats linear.

The bench sweeps to 502 bins (25 generations) so the exponential runs stay
within the ball budget on one core; raise ``max_bins``/``REPRO_BENCH_SCALE``
to paper scale.
"""

import numpy as np
from conftest import BENCH_SEED, bench_reps

from repro.experiments import run_experiment

MAX_BINS = 502


def test_fig14_linear_growth(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig14", seed=BENCH_SEED, repetitions=bench_reps(5), max_bins=MAX_BINS
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    base = result.series["base (all capacities = 2)"]
    for a in (1, 2, 4, 6):
        curve = result.series[f"lin a={a}"]
        assert curve[-1] < base[-1], f"lin a={a} should beat the baseline"
        assert curve[-1] < curve[1], f"lin a={a} should decrease"
    # stronger growth -> lower final load
    assert result.series["lin a=6"][-1] <= result.series["lin a=1"][-1]


def test_fig15_exponential_growth(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig15",
            seed=BENCH_SEED,
            repetitions=bench_reps(5),
            max_bins=MAX_BINS,
            ball_budget=500_000,
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    base = result.series["base (all capacities = 2)"]
    for b in (1.05, 1.1, 1.2, 1.4):
        curve = result.series[f"exp b={b}"]
        finite = np.isfinite(curve)
        assert curve[finite][-1] < base[finite][-1], f"exp b={b} should beat the baseline"
    # the aggressive factor ends lowest among the states it reaches
    strong = result.series["exp b=1.4"]
    weak = result.series["exp b=1.05"]
    finite = np.isfinite(strong) & np.isfinite(weak)
    assert strong[finite][-1] <= weak[finite][-1] + 0.05
