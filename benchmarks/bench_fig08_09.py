"""Figures 8-9 bench: randomised bin sizes, capacity sweep.

Paper series: Figure 8 — mean max load vs total capacity (n = 10,000,
capacities 1 + Bin(7, (c-1)/7)): falls from ~3.1 to ~1.3.  Figure 9 —
% of runs whose maximum sits in a size-x bin (x = 1, 2, 4, 6): the maximum
migrates from size-1 to larger classes as capacity grows.
"""

from conftest import BENCH_SEED, bench_reps

from repro.experiments import run_experiment


def test_fig08_max_load_vs_capacity(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig08",
            seed=BENCH_SEED,
            repetitions=bench_reps(6),
            n=10_000,
            mean_cap_grid=(1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0),
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    curve = result.series["max_load"]
    assert 2.7 <= curve[0] <= 3.5  # ~3.1 in the paper
    assert curve[-1] <= 1.6  # ~1.3 in the paper
    assert curve[-1] < curve[0]


def test_fig09_max_location_by_class(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig09",
            seed=BENCH_SEED,
            repetitions=bench_reps(40),
            n=1_000,
            mean_cap_grid=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0),
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    s1 = result.series["max_in_size_1"]
    s2 = result.series["max_in_size_2"]
    assert s1[0] == 100.0  # only size-1 bins exist at c = 1
    assert s1[-1] < 40.0  # migrated away by c = 8
    # size-2 bins must have held the maximum somewhere in the middle
    assert s2.max() > 20.0
