"""Ablation benches for the design choices DESIGN.md calls out.

Three deliberate choices in Algorithm 1 and the default configuration are
each toggled off to measure their effect on the maximum load:

1. **capacity tie-break** (step 3 of Algorithm 1) vs uniform / inverse
   tie-breaking — the paper argues moving ties toward bigger bins helps;
2. **capacity-proportional selection** vs uniform 1/n selection — the
   introduction's motivating comparison;
3. **number of choices d** — the lnln(n)/ln(d) dependence.

Each bench prints a small table of mean max loads.
"""

import numpy as np
from conftest import BENCH_SEED, bench_reps

from repro.bins import two_class_bins
from repro.core import simulate


def _mean_max(bins, reps, **kwargs):
    return float(
        np.mean(
            [
                simulate(bins, seed=(BENCH_SEED, s), **kwargs).max_load
                for s in range(reps)
            ]
        )
    )


def test_ablation_tie_break_policy(benchmark):
    """Paper's max-capacity tie-break vs uniform vs inverse."""
    bins = two_class_bins(500, 500, 1, 2)
    reps = bench_reps(80)

    def run():
        return {
            policy: _mean_max(bins, reps, tie_break=policy)
            for policy in ("max_capacity", "uniform", "min_capacity")
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("=== ablation: tie-break policy (caps 1 and 2, n=1000, m=C) ===")
    for policy, load in out.items():
        print(f"    {policy:>14s}: mean max load = {load:.4f}")
    # The paper's rule is at least as good as either alternative (the
    # effect is small on this array, so allow sampling noise at bench reps).
    assert out["max_capacity"] <= out["uniform"] + 0.06
    assert out["max_capacity"] <= out["min_capacity"] + 0.06


def test_ablation_selection_probability(benchmark):
    """Capacity-proportional selection vs uniform 1/n on a skewed array."""
    bins = two_class_bins(900, 100, 1, 20)
    reps = bench_reps(25)

    def run():
        return {
            "proportional": _mean_max(bins, reps, probabilities="proportional"),
            "uniform": _mean_max(bins, reps, probabilities="uniform"),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("=== ablation: selection probability (caps 1 and 20, 10% large) ===")
    for name, load in out.items():
        print(f"    {name:>14s}: mean max load = {load:.4f}")
    assert out["proportional"] <= out["uniform"] + 0.02


def test_ablation_incremental_vs_scratch_migration(benchmark):
    """Section 4.3's remark: reorganisation with minimum overhead vs the
    from-scratch re-allocation the figures use.  Measures balls moved when
    a batch of big disks joins a running system."""
    from repro.bins import uniform_bins
    from repro.core import expected_displaced_from_scratch, rebalance_waterfill

    old_bins = uniform_bins(200, 2)
    reps = bench_reps(10)

    def run():
        moved_incremental = []
        moved_scratch = []
        for s in range(reps):
            res = simulate(old_bins, seed=(BENCH_SEED, 77, s))
            new_bins = old_bins.with_appended([20] * 20)
            old_counts = np.concatenate([res.counts, np.zeros(20, dtype=np.int64)])
            plan = rebalance_waterfill(old_counts, new_bins)
            fresh = simulate(new_bins, m=int(old_counts.sum()), seed=(BENCH_SEED, 78, s))
            moved_incremental.append(plan.balls_moved)
            moved_scratch.append(expected_displaced_from_scratch(old_counts, fresh.counts))
        return float(np.mean(moved_incremental)), float(np.mean(moved_scratch))

    inc, scratch = benchmark.pedantic(run, rounds=1, iterations=1)
    total = 400
    print()
    print("=== ablation: migration volume on growth (200x2 disks + 20x20 disks) ===")
    print(f"    minimum-migration rebalance:        {inc:.1f} of {total} balls moved")
    print(f"    from-scratch re-allocation (E[..]): {scratch:.1f} of {total} balls displaced")
    # incremental must beat the redraw by a wide margin (the new batch holds
    # half the capacity here, so waterfill moves ~half while a redraw
    # displaces nearly everything)
    assert inc < scratch


def test_ablation_choices_d(benchmark):
    """lnln(n)/ln(d): more choices, lower max load, diminishing returns."""
    bins = two_class_bins(1000, 1000, 1, 8)
    reps = bench_reps(10)

    def run():
        return {d: _mean_max(bins, reps, d=d) for d in (1, 2, 3, 4)}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("=== ablation: number of choices d (caps 1 and 8, n=2000, m=C) ===")
    for d, load in out.items():
        print(f"    d={d}: mean max load = {load:.4f}")
    assert out[2] < out[1]
    assert out[4] <= out[2]
    # diminishing returns: the d=1 -> 2 win dwarfs the d=2 -> 4 win
    assert (out[1] - out[2]) > (out[2] - out[4])
