"""Sweep-fabric dispatch overhead vs the in-process serial ensemble path.

The fabric is a *distribution* mechanism — broker-leased blocks over a
worker fleet, park-file resume after worker deaths — not a local speedup
device: at CI scale its per-block costs (spec/park pickling, socket
round trips, completion polling) are visible next to fig02's cheap
blocks.  What this bench pins is that those costs stay *bounded*: the
2-worker fabric must complete the same run at no worse than
``1/FABRIC_FLOOR`` times the serial wall time (measured 0.35–0.6x serial
on CI hardware depending on load; floor 0.2x).  A protocol or
launcher regression that makes dispatch pathologically chatty trips the
floor long before it would hurt a real fleet.

Both timings run the identical request, and the results are asserted
bit-identical — the fabric clause of the seed contract, measured rather
than assumed.  Rows and the ``fabric_over_serial`` ratio land in
``BENCH_ensemble.json`` (see ``conftest.py``); run this module in the
same pytest invocation as ``bench_ensemble.py`` (as ``scripts/ci.sh``
does) so the session's speedup-kind gate sees every expected ratio.
"""

import time

import numpy as np
from conftest import BENCH_SEED, record_bench

from repro.experiments import run_experiment
from repro.runtime import FabricSession

#: Heavy enough that block compute is visible against dispatch overhead,
#: big blocks so the park pickling amortizes; ~0.4 s serial on CI hardware.
FABRIC_R = 4096
FABRIC_BLOCK = 512
FABRIC_WORKERS = 2

#: Wall-time ratio floor: fabric must finish within 1/0.2 of serial.
FABRIC_FLOOR = 0.2


def _fig02():
    return run_experiment(
        "fig02",
        engine="ensemble",
        seed=BENCH_SEED,
        repetitions=FABRIC_R,
        block_size=FABRIC_BLOCK,
    )


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fabric_dispatch_overhead_floor():
    _fig02()  # explicit untimed warmup: imports, jit loads, allocator pools
    serial, serial_result = _best_of(_fig02)
    with FabricSession(FABRIC_WORKERS) as session:
        with session.activate():
            _fig02()  # warm: worker module imports, broker handshakes

        def fabbed():
            with session.activate():
                return _fig02()

        fabric, fabric_result = _best_of(fabbed)
    ratio = serial / fabric
    print(f"\nfig02 R={FABRIC_R} bs={FABRIC_BLOCK}: serial {serial * 1e3:.1f} ms, "
          f"{FABRIC_WORKERS}-worker fabric {fabric * 1e3:.1f} ms, "
          f"ratio {ratio:.2f}x (floor {FABRIC_FLOOR}x)")
    for name in serial_result.series:
        assert (serial_result.series[name].tobytes()
                == fabric_result.series[name].tobytes()), name
    assert np.array_equal(serial_result.x_values, fabric_result.x_values)
    record_bench("fig02", FABRIC_R, "ensemble", "auto", serial)
    record_bench("fig02", FABRIC_R, f"ensemble-fabric{FABRIC_WORKERS}",
                 "auto", fabric)
    record_bench("fig02", FABRIC_R, "fabric_over_serial", "auto", None,
                 ratio=ratio, floor=FABRIC_FLOOR)
    assert ratio >= FABRIC_FLOOR, (
        f"fabric dispatch regressed: {ratio:.2f}x < {FABRIC_FLOOR}x of serial "
        f"on fig02 R={FABRIC_R} over {FABRIC_WORKERS} workers"
    )
