"""Figures 17-18 bench: optimising the selection-probability exponent.

Paper series: Figure 18 — mean max load vs exponent t for arrays of 50
capacity-1 and 50 capacity-x bins (x = 2..6); Figure 17 — the optimal t per
x (x = 2..14), e.g. t* ~ 2.1 at x = 3.  Expected shape: convex-ish curves
with minima strictly above t = 1.
"""

import numpy as np
from conftest import BENCH_SEED, bench_reps

from repro.experiments import run_experiment


def test_fig18_max_load_vs_exponent(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig18",
            seed=BENCH_SEED,
            repetitions=bench_reps(400),
            capacities=(2, 3, 4, 5, 6),
            t_grid=tuple(np.round(np.arange(0.0, 3.51, 0.5), 3)),
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    for name, curve in result.series.items():
        t_best = result.x_values[int(np.argmin(curve))]
        # minima strictly above proportional selection (t = 1)
        assert t_best > 1.0, (name, t_best)
        # t = 0 (uniform) is clearly worse than the optimum
        assert curve[0] > curve.min() + 0.05, name


def test_fig17_optimal_exponent(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig17",
            seed=BENCH_SEED,
            repetitions=bench_reps(300),
            capacities=(2, 3, 4, 6, 8, 10, 12, 14),
            t_grid=tuple(np.round(np.arange(1.0, 3.01, 0.2), 3)),
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    opt = result.series["optimal_exponent"]
    assert (opt > 1.0).all()
    # the paper reports ~2.1 at x = 3; allow a generous band at bench reps
    x = result.x_values
    at3 = float(opt[np.where(x == 3)[0][0]])
    assert 1.4 <= at3 <= 2.8
