"""Adaptive-precision acceptance floors on the easy fig02 configuration.

Not a paper figure — this pins the tentpole win of the adaptive-precision
layer (:mod:`repro.analysis.precision`): at a relative CI half-width
target of 2% (95% confidence), the easy fig02 configuration must

* stop at **<= 50%** of the fixed repetition budget (measured ~35%),
* agree with the fixed-budget estimate within a pinned tolerance at every
  monitored series (the two runs share the replication prefix, so the
  difference is far inside one half-width),
* round-trip the result store: the early-stopped result is cached under
  its precision-aware key and a repeated request is a bit-identical hit
  with the resume checkpoints cleared.

A min-of-rounds wall-clock comparison rides along so the replication
saving is visible as time, not just counts.  ``REPRO_BENCH_QUICK=1``
trims the timing rounds (the floor assertions always run).
"""

import os
import time

from conftest import BENCH_SEED

from repro.analysis.precision import PrecisionTarget
from repro.experiments import RunRequest, execute_request, run_experiment
from repro.io.store import ResultStore

#: Fixed repetition budget per capacity class (4 classes -> 4096 total).
BUDGET = 1024

#: The acceptance target: 2% relative half-width at 95% confidence.
TARGET = PrecisionTarget(rel=0.02, confidence=0.95)

#: Replications-used ceiling relative to the budget (the acceptance floor).
USED_FRACTION_CEILING = 0.5

#: Per-series agreement tolerance vs the fixed-budget estimate (measured
#: max |diff| ~0.012 on the rank-0 means; 0.05 leaves seed headroom).
AGREEMENT_TOL = 0.05

TIMING_ROUNDS = 2 if os.environ.get("REPRO_BENCH_QUICK") else 5


def _adaptive():
    return run_experiment(
        "fig02", engine="ensemble", seed=BENCH_SEED, repetitions=BUDGET,
        precision=TARGET,
    )


def _fixed(block_size):
    # Same block layout as the adaptive run, so the replication prefixes
    # (and hence the estimates) are directly comparable.
    return run_experiment(
        "fig02", engine="ensemble", seed=BENCH_SEED, repetitions=BUDGET,
        block_size=block_size, precision=None,
    )


def _adaptive_block_size(result):
    """The width the adaptive default picked (pure function of the run)."""
    from repro.analysis.precision import AdaptiveRecorder

    recorder = AdaptiveRecorder(TARGET, engine="ensemble")
    return recorder.block_size(result.parameters["repetitions"], None)


def test_adaptive_stops_at_half_budget_floor():
    """Acceptance floor: rel=2%/conf=95% uses <= 50% of the fixed budget
    on fig02 and matches the fixed-budget estimate within tolerance."""
    adaptive = _adaptive()
    info = adaptive.extra["adaptive"]
    used, budget = info["replications_used"], info["replication_budget"]
    fraction = used / budget
    print(f"\nfig02 adaptive rel=2%: used {used} of {budget} replications "
          f"({fraction:.1%}); per-class "
          f"{[r['replications'] for r in info['runs'].values()]}")
    assert info["early_stopped"]
    assert fraction <= USED_FRACTION_CEILING, (
        f"adaptive run used {fraction:.1%} of the budget "
        f"(floor: <= {USED_FRACTION_CEILING:.0%})"
    )
    for label, run in info["runs"].items():
        series = run["series"]["rank0"]
        assert run["stopped_early"], label
        assert series["halfwidth"] <= series["tolerance"], label

    fixed = _fixed(_adaptive_block_size(adaptive))
    for name in fixed.series:
        diff = abs(float(adaptive.series[name][0]) - float(fixed.series[name][0]))
        print(f"  {name}: rank0 adaptive vs fixed |diff| = {diff:.4f}")
        assert diff <= AGREEMENT_TOL, (
            f"{name}: adaptive estimate drifted {diff:.4f} from the "
            f"fixed-budget estimate (tolerance {AGREEMENT_TOL})"
        )


def test_adaptive_is_measurably_faster_than_fixed_budget():
    """The replication saving shows up as wall-clock (min-of-rounds)."""
    block_size = _adaptive_block_size(_adaptive())  # warm-up + width
    fixed_t = adaptive_t = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        _fixed(block_size)
        fixed_t = min(fixed_t, time.perf_counter() - start)
        start = time.perf_counter()
        _adaptive()
        adaptive_t = min(adaptive_t, time.perf_counter() - start)
    speedup = fixed_t / adaptive_t
    print(f"\nfig02 fixed {fixed_t * 1e3:.1f} ms vs adaptive "
          f"{adaptive_t * 1e3:.1f} ms ({speedup:.2f}x)")
    assert speedup >= 1.2, (
        f"adaptive run not faster than the fixed budget: {speedup:.2f}x "
        f"(floor 1.2x at ~35% of the replications)"
    )


def test_early_stopped_result_round_trips_the_store(tmp_path):
    """Early-stop x store: hit-on-repeat, bit-identical, checkpoints gone."""
    store = ResultStore(tmp_path / "store")
    request = RunRequest(
        "fig02", seed=BENCH_SEED, engine="ensemble",
        overrides={"repetitions": BUDGET}, precision=TARGET,
    )
    first = execute_request(request, store=store)
    second = execute_request(request, store=store)
    assert not first.cache_hit and second.cache_hit
    a, b = first.result, second.result
    assert a.x_values.tobytes() == b.x_values.tobytes()
    for name in a.series:
        assert a.series[name].tobytes() == b.series[name].tobytes(), name
    assert (b.extra["adaptive"]["replications_used"]
            == a.extra["adaptive"]["replications_used"])
    assert a.extra["adaptive"]["early_stopped"]
    assert not store.has_checkpoints(first.key)
