"""Storage-scenario benches (application layer over the paper's protocol).

Not paper figures — these track the placement-strategy comparison and the
expansion/migration trade-off at cluster scale, the downstream use case the
paper's Section 4.3 motivates.
"""

import numpy as np
from conftest import BENCH_SEED, bench_reps

from repro.storage import (
    Cluster,
    GreedyTwoChoice,
    LeastLoaded,
    SingleChoice,
    compare_strategies,
    expansion_study,
    unit_objects,
)


def test_storage_strategy_comparison(benchmark):
    """Fill/read imbalance of the placement policies on a 3-generation
    cluster; the paper's greedy-2-choice should land between single-choice
    and the omniscient baseline."""
    cluster = Cluster.homogeneous(200, 1).expand(100, 4).expand(50, 16)
    objects = unit_objects(cluster.total_capacity, zipf_s=1.1, rng=BENCH_SEED)
    reps = bench_reps(5)

    def run():
        return compare_strategies(
            [GreedyTwoChoice(), SingleChoice(), LeastLoaded()],
            objects, cluster, repetitions=reps, seed=BENCH_SEED,
        )

    cmp_ = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("=== storage: placement strategies (200x1 + 100x4 + 50x16 disks) ===")
    for name, fill, imb, read in cmp_.table_rows():
        print(f"    {name:>16s}: max_fill={fill:.3f} fill_imb={imb:.3f} read_imb={read:.3f}")
    r = cmp_.reports
    assert r["greedy-2-choice"]["max_fill"] <= r["single-choice"]["max_fill"]
    assert r["least-loaded"]["max_fill"] <= r["greedy-2-choice"]["max_fill"] + 1e-9


def test_storage_expansion_migration(benchmark):
    """Growth event: rebalance volume vs from-scratch displacement."""
    cluster = Cluster.homogeneous(300, 2)
    objects = unit_objects(cluster.total_capacity, rng=BENCH_SEED)
    reps = bench_reps(5)

    def run():
        savings, inc, scr = [], [], []
        for s in range(reps):
            study = expansion_study(
                cluster, objects, new_disks=30, new_capacity=20,
                seed=(BENCH_SEED, s),
            )
            savings.append(study.migration_savings)
            inc.append(study.balls_moved_incremental)
            scr.append(study.balls_displaced_scratch)
        return float(np.mean(savings)), float(np.mean(inc)), float(np.mean(scr))

    saving, inc, scr = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("=== storage: expansion 300x2 + 30x20 disks ===")
    print(f"    incremental rebalance moves {inc:.0f} balls")
    print(f"    from-scratch displaces      {scr:.0f} balls")
    print(f"    saving: {100 * saving:.0f}%")
    assert saving > 0.2
