"""Figure 16 bench: heavily loaded case with random capacities.

Paper series: deviation of the current max load from the current average
after i*CAP balls (i = 1..100) for CAP = 1n, 2n, 5n, 10n at n = 10,000.
Expected shape: a bundle of parallel, essentially flat lines, ordered so
larger CAP sits closer to zero.

Bench scale: n = 2,000 and 40 rounds keeps the largest run at 800k balls.
"""

import numpy as np
from conftest import BENCH_SEED, bench_reps

from repro.experiments import run_experiment


def test_fig16_heavy_load_invariance(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig16",
            seed=BENCH_SEED,
            repetitions=bench_reps(3),
            n=2_000,
            rounds=40,
            cap_multipliers=(1, 2, 5, 10),
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    # Flatness: fitted slope of every line is ~0 per CAP unit.
    for name, slope in result.extra["per_series_slope"].items():
        assert abs(slope) < 0.02, (name, slope)
    # Ordering: larger CAP -> smaller deviation.
    means = {name: float(np.mean(ys)) for name, ys in result.series.items()}
    assert means["CAP = 10*n"] < means["CAP = 2*n"] < means["CAP = 1*n"]
