"""Figures 2-5 bench: 32 uniform bins under growing ball counts.

Paper series: sorted load profiles for capacities 1-4 at m = C, 10C, 100C,
1000C.  Expected shape: the deviation of the top of each profile from the
average load m/C is invariant in the multiplier (heavily-loaded case).
"""

import pytest
from conftest import BENCH_SEED, bench_reps

from repro.experiments import run_experiment


@pytest.mark.parametrize(
    "fig_id,multiplier",
    [("fig02", 1), ("fig03", 10), ("fig04", 100), ("fig05", 1000)],
)
def test_fig02_05_small_heavy(benchmark, report_series, fig_id, multiplier):
    result = benchmark.pedantic(
        lambda: run_experiment(fig_id, seed=BENCH_SEED, repetitions=bench_reps(150)),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    gaps = result.extra["gap_above_average"]
    # Invariance: every per-capacity gap stays within a band independent of
    # the multiplier (the paper's Figures 3-5 "look identical").
    for c in (1, 2, 3, 4):
        assert 0.0 < gaps[f"c={c}"] < 2.5, (multiplier, c, gaps)
    # Larger capacity -> smaller gap at fixed multiplier.
    assert gaps["c=4"] < gaps["c=1"]
