"""Result-store put/get latency.

Not a paper figure — this tracks the overhead of the content-addressed
store (:mod:`repro.io.store`) that makes repeated runs cache hits.  Two
entry shapes bracket the registry:

* a fig02-sized result (32-point grid, 4 series) — the smallest entries
  the sweep front end shuffles around;
* a fig01-sized result (10,000-point grid, 5 series, NaN padding) — the
  largest profile entries.

The put path includes the atomic tmp-file + rename dance and checkpoint
cleanup; the get path includes full ``.npz`` decode and
``ExperimentResult`` reconstruction.  Latencies land in the benchmark JSON
next to the engine numbers, so a store regression is visible the same way
an engine regression is.
"""

import numpy as np
import pytest

from repro.experiments import RunRequest
from repro.experiments.base import ExperimentResult
from repro.io.store import ResultStore

SHAPES = {
    "fig02_sized": dict(n=32, series=4, nan_pad=0),
    "fig01_sized": dict(n=10_000, series=5, nan_pad=128),
}


def _make_result(experiment_id: str, n: int, series: int, nan_pad: int) -> ExperimentResult:
    rng = np.random.default_rng(20260612)
    data = {}
    for j in range(series):
        ys = rng.random(n)
        if nan_pad:
            ys[-nan_pad:] = np.nan  # the registry's NaN-padded class profiles
        data[f"series-{j}"] = ys
    return ExperimentResult(
        experiment_id=experiment_id,
        title="store benchmark payload",
        x_name="bin_rank",
        x_values=np.arange(n),
        series=data,
        parameters={"n": n, "repetitions": 400, "seed": 20260612, "engine": "ensemble"},
        extra={"wall_seconds": 1.234},
    )


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_store_put_latency(benchmark, tmp_path, shape):
    store = ResultStore(tmp_path)
    result = _make_result(shape, **SHAPES[shape])
    request = RunRequest(shape, seed=20260612, overrides={"repetitions": 400})
    key = request.cache_key(version=1)
    benchmark(lambda: store.put(key, result, request=request))
    assert store.contains(key)


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_store_get_latency(benchmark, tmp_path, shape):
    store = ResultStore(tmp_path)
    result = _make_result(shape, **SHAPES[shape])
    request = RunRequest(shape, seed=20260612, overrides={"repetitions": 400})
    key = request.cache_key(version=1)
    store.put(key, result, request=request)
    stored = benchmark(lambda: store.get(key))
    for name, ys in result.series.items():
        assert stored.result.series[name].tobytes() == ys.tobytes()
