"""Benchmark harness support.

Each ``bench_figNN`` module regenerates one of the paper's figures at a
reduced scale inside ``pytest-benchmark`` and prints the series rows the
paper plots, so ``pytest benchmarks/ --benchmark-only`` doubles as the
figure-regeneration harness.  Scales are tuned for minutes-level total
runtime on one core; raise ``REPRO_BENCH_SCALE`` to approach paper scale.
"""

import os
import sys
from pathlib import Path

try:  # pragma: no cover
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np
import pytest

from repro.core.compiled import HAVE_NUMBA

#: Global multiplier on the per-bench repetition counts (env override).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Master seed for all benchmark runs.
BENCH_SEED = 20260612

#: Timing rows / speedup entries registered by the floor tests via
#: :func:`record_bench`; flushed to ``BENCH_ensemble.json`` at the repo
#: root when the session ends (see ``pytest_sessionfinish``) so perf is
#: diffable PR over PR.
_BENCH_ROWS: list = []
_BENCH_SPEEDUPS: list = []


def record_bench(config, R, engine, wavefront, seconds, *, ratio=None,
                 floor=None, threads=1):
    """Register one benchmark measurement for ``BENCH_ensemble.json``.

    With *seconds* set, records a timing row (*engine* is ``scalar`` /
    ``ensemble``, *wavefront* the dispatch mode in force, *threads* the
    compiled-tier thread budget the timing ran under — 1 for every
    serial-kernel path).  With *ratio* and *floor* set instead, records a
    speedup entry (*engine* names the ratio kind, e.g.
    ``wavefront_over_per_ball``).  Every row also records the machine's
    ``cpu_count`` so parallel timings are interpretable PR over PR.
    """
    if seconds is not None:
        _BENCH_ROWS.append({
            "config": str(config), "R": int(R), "engine": str(engine),
            "wavefront": str(wavefront), "seconds": float(seconds),
            "threads": int(threads), "cpu_count": int(os.cpu_count() or 1),
        })
    if ratio is not None:
        _BENCH_SPEEDUPS.append({
            "config": str(config), "R": int(R), "kind": str(engine),
            "ratio": float(ratio), "floor": float(floor),
        })


#: Ratio kinds every complete floor run produces; a session missing any of
#: them (single-test selection, a failed floor) must not overwrite the
#: committed perf-trajectory document with a partial one.  The compiled
#: kind is expected only where numba is installed — its floor tests skip
#: cleanly otherwise, and a skip must not block the write.
_EXPECTED_SPEEDUP_KINDS = {
    "ensemble_over_scalar",
    "wavefront_over_per_ball",
    "wavefront_over_fast",
    "fabric_over_serial",
}
if HAVE_NUMBA:  # pragma: no cover - only where numba is installed
    _EXPECTED_SPEEDUP_KINDS.add("compiled_over_wavefront")
    if (os.cpu_count() or 1) >= 4:  # the parallel floor also needs cores
        _EXPECTED_SPEEDUP_KINDS.add("compiled_parallel_over_serial")


def pytest_sessionfinish(session, exitstatus):
    if not (_BENCH_ROWS or _BENCH_SPEEDUPS):
        return
    kinds = {s["kind"] for s in _BENCH_SPEEDUPS}
    if exitstatus != 0 or not _EXPECTED_SPEEDUP_KINDS <= kinds:
        print("\nbenchmark records NOT written (partial or failed session)")
        return
    from repro.io.benchjson import write_bench_json

    path = Path(__file__).resolve().parents[1] / "BENCH_ensemble.json"
    write_bench_json(
        path,
        quick=bool(os.environ.get("REPRO_BENCH_QUICK")),
        rows=_BENCH_ROWS,
        speedups=_BENCH_SPEEDUPS,
    )
    print(f"\nbenchmark records written to {path}")

#: Replication widths for the ensemble-vs-scalar engine bench
#: (``bench_ensemble.py``).  ``REPRO_BENCH_QUICK=1`` trims the sweep to the
#: regression-sensitive widths so a quick run still lands the scalar/ensemble
#: pair (and hence the speedup ratio) in the ``BENCH_*.json`` output.
ENSEMBLE_BENCH_RS = (
    (8, 64) if os.environ.get("REPRO_BENCH_QUICK") else (1, 8, 64, 256)
)


def bench_reps(base: int) -> int:
    """Repetitions for a bench given its tuned base count."""
    return max(2, int(round(base * BENCH_SCALE)))


@pytest.fixture
def report_series():
    """Printer for figure series: the rows the paper's plot encodes."""

    def _print(result, max_rows: int = 12):
        print()
        print(f"=== {result.experiment_id}: {result.title} ===")
        for key, value in result.parameters.items():
            print(f"    {key} = {value}")
        n = result.x_values.size
        idx = (
            list(range(n))
            if n <= max_rows
            else sorted(set(list(range(0, n, max(1, n // max_rows))) + [n - 1]))
        )
        header = [result.x_name] + list(result.series)
        print("    " + " | ".join(f"{h:>22s}" for h in header))
        for i in idx:
            row = [f"{float(result.x_values[i]):>22.6g}"]
            for name in result.series:
                v = float(result.series[name][i])
                row.append(f"{v:>22.6g}" if np.isfinite(v) else f"{'nan':>22s}")
            print("    " + " | ".join(row))
        for key, value in result.extra.items():
            if key != "wall_seconds":
                print(f"    extra.{key} = {value}")

    return _print
