"""Benchmark harness support.

Each ``bench_figNN`` module regenerates one of the paper's figures at a
reduced scale inside ``pytest-benchmark`` and prints the series rows the
paper plots, so ``pytest benchmarks/ --benchmark-only`` doubles as the
figure-regeneration harness.  Scales are tuned for minutes-level total
runtime on one core; raise ``REPRO_BENCH_SCALE`` to approach paper scale.
"""

import os
import sys
from pathlib import Path

try:  # pragma: no cover
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np
import pytest

#: Global multiplier on the per-bench repetition counts (env override).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Master seed for all benchmark runs.
BENCH_SEED = 20260612

#: Replication widths for the ensemble-vs-scalar engine bench
#: (``bench_ensemble.py``).  ``REPRO_BENCH_QUICK=1`` trims the sweep to the
#: regression-sensitive widths so a quick run still lands the scalar/ensemble
#: pair (and hence the speedup ratio) in the ``BENCH_*.json`` output.
ENSEMBLE_BENCH_RS = (
    (8, 64) if os.environ.get("REPRO_BENCH_QUICK") else (1, 8, 64, 256)
)


def bench_reps(base: int) -> int:
    """Repetitions for a bench given its tuned base count."""
    return max(2, int(round(base * BENCH_SCALE)))


@pytest.fixture
def report_series():
    """Printer for figure series: the rows the paper's plot encodes."""

    def _print(result, max_rows: int = 12):
        print()
        print(f"=== {result.experiment_id}: {result.title} ===")
        for key, value in result.parameters.items():
            print(f"    {key} = {value}")
        n = result.x_values.size
        idx = (
            list(range(n))
            if n <= max_rows
            else sorted(set(list(range(0, n, max(1, n // max_rows))) + [n - 1]))
        )
        header = [result.x_name] + list(result.series)
        print("    " + " | ".join(f"{h:>22s}" for h in header))
        for i in idx:
            row = [f"{float(result.x_values[i]):>22.6g}"]
            for name in result.series:
                v = float(result.series[name][i])
                row.append(f"{v:>22.6g}" if np.isfinite(v) else f"{'nan':>22s}")
            print("    " + " | ".join(row))
        for key, value in result.extra.items():
            if key != "wall_seconds":
                print(f"    extra.{key} = {value}")

    return _print
