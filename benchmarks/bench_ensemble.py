"""Scalar loop vs lockstep ensemble vs wavefront vs compiled kernels.

Not a paper figure — this tracks the engine-level speedups:

* the exact fig02 setting (32 uniform bins, capacities 1–4, m = C, d = 2),
  the PR-1 flagship configuration, acceptance floor **5x** at ``R = 64``;
* the fig18 exponent-sweep setting (100 two-class bins, power-``t``
  selection), representative of the migrated matrix, floor **3x** at
  ``R = 64``;
* the **fig01-scaled large-n** setting (n = 10,000 uniform bins, d = 2,
  m = n — the paper's Figure 1 scale) for the conflict-free wavefront
  kernels (:mod:`repro.core.wavefront`): kernel-level floors over the
  per-ball ensemble kernel at R = 16/64 and over the scalar
  ``fast.run_batch`` loop, plus a driver-level sanity ratio;
* the same configuration for the **compiled backend**
  (:mod:`repro.core.compiled`): floors over the wavefront kernel at
  R = 16/64, measured only where numba is installed (the interpreter
  fallback is correctness-equivalent but has no floor to pin);
* the **replication-parallel compiled** floor: the prange kernels at
  R = 256 over the serial compiled kernels, >= 2x with
  threads = min(cores, R), measured only with numba and >= 4 cores.

Wavefront floors are pinned well below the measured ratios because the CI
hardware's throughput fluctuates; the measured values (see ROADMAP
"Wavefront kernels") are the regression signal, the floors the alarm.

Every floor test also records its timings and ratios; the session writes
them to ``BENCH_ensemble.json`` at the repo root (see ``conftest.py``) so
PR-over-PR perf changes are diffable.

``REPRO_BENCH_QUICK=1`` trims the ``R`` sweep (see ``conftest.py``).
"""

import os
import time

import numpy as np
import pytest
from conftest import BENCH_SEED, ENSEMBLE_BENCH_RS, record_bench

from repro.core.compiled import HAVE_NUMBA, run_batch_compiled, warmup
from repro.core.ensemble import run_batch_ensemble
from repro.core.fast import run_batch
from repro.core.wavefront import WavefrontWorkspace, run_batch_wavefront
from repro.experiments import run_experiment

#: fig18 at one capacity/exponent pair — a post-matrix-migration workload
#: (power-probability sampling + two-class array) unlike fig02's uniform
#: capacity classes.
FIG18_KWARGS = dict(capacities=(3,), t_grid=(1.0, 2.0))

#: The wavefront large-n configuration: fig01 scaled to the paper's
#: n = 10,000 (uniform capacities, d = 2, m = n).
WAVEFRONT_N = 10_000


@pytest.mark.parametrize("engine", ["scalar", "ensemble"])
@pytest.mark.parametrize("R", ENSEMBLE_BENCH_RS)
def test_fig02_engine_throughput(benchmark, R, engine):
    """One fig02 run (all four capacity classes) per engine and width."""
    result = benchmark(
        lambda: run_experiment("fig02", engine=engine, seed=BENCH_SEED, repetitions=R)
    )
    assert result.parameters["engine"] == engine
    assert result.parameters["repetitions"] == R


@pytest.mark.parametrize("engine", ["scalar", "ensemble"])
@pytest.mark.parametrize("R", ENSEMBLE_BENCH_RS)
def test_fig18_engine_throughput(benchmark, R, engine):
    """One fig18 grid point pair per engine and width."""
    result = benchmark(
        lambda: run_experiment(
            "fig18", engine=engine, seed=BENCH_SEED, repetitions=R, **FIG18_KWARGS
        )
    )
    assert result.parameters["engine"] == engine
    assert result.parameters["repetitions"] == R


def _best_of(experiment_id, engine, rounds, **kwargs):
    elapsed = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_experiment(
            experiment_id, engine=engine, seed=BENCH_SEED, repetitions=64, **kwargs
        )
        elapsed = min(elapsed, time.perf_counter() - start)
    return elapsed


def _assert_speedup_floor(experiment_id, floor, rounds=7, **kwargs):
    # Explicit untimed warmup of BOTH timed paths: import costs, allocator
    # pools, and (with numba) cached-jit loads must never land in a floor.
    run_experiment(
        experiment_id, engine="ensemble", seed=BENCH_SEED, repetitions=64, **kwargs
    )
    run_experiment(
        experiment_id, engine="scalar", seed=BENCH_SEED, repetitions=64, **kwargs
    )
    scalar = _best_of(experiment_id, "scalar", rounds, **kwargs)
    ensemble = _best_of(experiment_id, "ensemble", rounds, **kwargs)
    speedup = scalar / ensemble
    print(f"\n{experiment_id} R=64: scalar {scalar * 1e3:.2f} ms, "
          f"ensemble {ensemble * 1e3:.2f} ms, speedup {speedup:.2f}x")
    record_bench(experiment_id, 64, "scalar", "n/a", scalar)
    record_bench(experiment_id, 64, "ensemble", "auto", ensemble)
    record_bench(experiment_id, 64, "ensemble_over_scalar", "n/a", None,
                 ratio=speedup, floor=floor)
    assert speedup >= floor, (
        f"lockstep ensemble regressed: {speedup:.2f}x < {floor}x at R=64 on "
        f"{experiment_id} (scalar {scalar * 1e3:.2f} ms vs ensemble "
        f"{ensemble * 1e3:.2f} ms)"
    )


def test_lockstep_speedup_at_r64():
    """Acceptance floor: the ensemble engine is >= 5x the scalar loop at
    R = 64 replications on the fig02 configuration (min-of-rounds timing)."""
    _assert_speedup_floor("fig02", 5.0)


def test_lockstep_speedup_fig18_at_r64():
    """Acceptance floor for the completed engine matrix: >= 3x over the
    scalar loop at R = 64 on the fig18 configuration (measured ~5x)."""
    _assert_speedup_floor("fig18", 3.0, **FIG18_KWARGS)


# --------------------------------------------------------------------------
# Wavefront kernel floors (fig01 scaled to n = 10,000)
# --------------------------------------------------------------------------

def _wavefront_inputs(R, seed=BENCH_SEED):
    rng = np.random.default_rng(seed)
    n = WAVEFRONT_N
    choices = rng.integers(0, n, size=(R, n, 2))
    tie_u = rng.random((R, n))
    caps = np.ones(n, dtype=np.int64)
    return caps, choices, tie_u


def _best(f, rounds):
    elapsed = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        f()
        elapsed = min(elapsed, time.perf_counter() - start)
    return elapsed


def _assert_wavefront_floor(R, floor, rounds=5):
    caps, choices, tie_u = _wavefront_inputs(R)
    n = WAVEFRONT_N
    ws = WavefrontWorkspace()
    # Explicit untimed warmup of BOTH timed paths at the benched shape.
    run_batch_wavefront(
        np.zeros((R, n), dtype=np.int64), caps, choices, tie_u, workspace=ws
    )
    run_batch_ensemble(
        np.zeros((R, n), dtype=np.int64), caps, choices, tie_u
    )
    per_ball = _best(
        lambda: run_batch_ensemble(
            np.zeros((R, n), dtype=np.int64), caps, choices, tie_u
        ),
        rounds,
    )
    wavefront = _best(
        lambda: run_batch_wavefront(
            np.zeros((R, n), dtype=np.int64), caps, choices, tie_u, workspace=ws
        ),
        rounds,
    )
    speedup = per_ball / wavefront
    print(f"\nwavefront fig01-scaled n={n} R={R}: per-ball {per_ball * 1e3:.2f} ms, "
          f"wavefront {wavefront * 1e3:.2f} ms, speedup {speedup:.2f}x")
    record_bench("fig01_large", R, "ensemble", "off", per_ball)
    record_bench("fig01_large", R, "ensemble", "on", wavefront)
    record_bench("fig01_large", R, "wavefront_over_per_ball", "n/a", None,
                 ratio=speedup, floor=floor)
    assert speedup >= floor, (
        f"wavefront kernel regressed: {speedup:.2f}x < {floor}x at R={R} on "
        f"the fig01-scaled configuration (per-ball {per_ball * 1e3:.2f} ms vs "
        f"wavefront {wavefront * 1e3:.2f} ms)"
    )


def test_wavefront_floor_r16():
    """Wavefront floor at R = 16 — the lockstep width the small-block
    conventions (shared-params, adaptive precision) actually run — >= 2.5x
    over the per-ball ensemble kernel (measured ~3.6–4.1x)."""
    _assert_wavefront_floor(16, 2.5)


def test_wavefront_floor_r64():
    """Wavefront floor at R = 64: >= 1.4x over the per-ball ensemble kernel
    (measured ~1.7–1.9x; the per-ball kernel is already ~40% memory-bound
    at this width, so the remaining call-overhead win is bounded — see
    ROADMAP "Wavefront kernels")."""
    _assert_wavefront_floor(64, 1.4)


def test_wavefront_scalar_floor():
    """Scalar-engine floor on the same configuration: the R = 1 wavefront
    path is >= 1.3x over the pure-Python ``fast.run_batch`` loop (measured
    ~1.5–1.9x)."""
    floor = 1.3
    caps, choices, tie_u = _wavefront_inputs(1)
    n = WAVEFRONT_N
    caps_list = caps.tolist()
    ws = WavefrontWorkspace()
    # Explicit untimed warmup of BOTH timed paths.
    run_batch_wavefront(
        np.zeros((1, n), dtype=np.int64), caps, choices, tie_u, workspace=ws
    )
    run_batch([0] * n, caps_list, choices[0], tie_u[0])
    fast = _best(
        lambda: run_batch([0] * n, caps_list, choices[0], tie_u[0]), 5
    )
    wavefront = _best(
        lambda: run_batch_wavefront(
            np.zeros((1, n), dtype=np.int64), caps, choices, tie_u, workspace=ws
        ),
        5,
    )
    speedup = fast / wavefront
    print(f"\nwavefront scalar n={n}: fast.run_batch {fast * 1e3:.2f} ms, "
          f"wavefront {wavefront * 1e3:.2f} ms, speedup {speedup:.2f}x")
    record_bench("fig01_large", 1, "scalar", "off", fast)
    record_bench("fig01_large", 1, "scalar", "on", wavefront)
    record_bench("fig01_large", 1, "wavefront_over_fast", "n/a", None,
                 ratio=speedup, floor=floor)
    assert speedup >= floor, (
        f"scalar wavefront regressed: {speedup:.2f}x < {floor}x "
        f"(fast {fast * 1e3:.2f} ms vs wavefront {wavefront * 1e3:.2f} ms)"
    )


def test_wavefront_results_match_per_ball():
    """The benched configuration is also correctness-checked here, so a
    floor run can never be satisfied by a kernel that drifted."""
    caps, choices, tie_u = _wavefront_inputs(8, seed=BENCH_SEED + 1)
    n = WAVEFRONT_N
    base = np.zeros((8, n), dtype=np.int64)
    run_batch_ensemble(base, caps, choices, tie_u)
    wf = np.zeros((8, n), dtype=np.int64)
    run_batch_wavefront(wf, caps, choices, tie_u)
    np.testing.assert_array_equal(base, wf)


# --------------------------------------------------------------------------
# Compiled backend floors (same fig01-scaled configuration)
# --------------------------------------------------------------------------

def _assert_compiled_floor(R, floor, rounds=5):
    """Compiled kernel vs the NumPy wavefront kernel on the fig01-scaled
    batch.  ``warmup()`` keeps jit compilation (disk-cached, but the
    first-shape load still costs) out of the timed section."""
    caps, choices, tie_u = _wavefront_inputs(R)
    n = WAVEFRONT_N
    ws = WavefrontWorkspace()
    warmup()
    run_batch_wavefront(  # warm both competitors at the benched shape
        np.zeros((R, n), dtype=np.int64), caps, choices, tie_u, workspace=ws
    )
    run_batch_compiled(
        np.zeros((R, n), dtype=np.int64), caps, choices, tie_u
    )
    wavefront = _best(
        lambda: run_batch_wavefront(
            np.zeros((R, n), dtype=np.int64), caps, choices, tie_u, workspace=ws
        ),
        rounds,
    )
    compiled = _best(
        lambda: run_batch_compiled(
            np.zeros((R, n), dtype=np.int64), caps, choices, tie_u
        ),
        rounds,
    )
    speedup = wavefront / compiled
    print(f"\ncompiled fig01-scaled n={n} R={R}: wavefront {wavefront * 1e3:.2f} ms, "
          f"compiled {compiled * 1e3:.2f} ms, speedup {speedup:.2f}x")
    record_bench("fig01_large", R, "compiled", "n/a", compiled)
    record_bench("fig01_large", R, "compiled_over_wavefront", "n/a", None,
                 ratio=speedup, floor=floor)
    assert speedup >= floor, (
        f"compiled kernel regressed: {speedup:.2f}x < {floor}x at R={R} on "
        f"the fig01-scaled configuration (wavefront {wavefront * 1e3:.2f} ms "
        f"vs compiled {compiled * 1e3:.2f} ms)"
    )


_NO_NUMBA_REASON = (
    "numba not installed: the compiled tier runs its interpreter fallback, "
    "which has no floor to pin (correctness is covered in tests/core)"
)


@pytest.mark.skipif(not HAVE_NUMBA, reason=_NO_NUMBA_REASON)
def test_compiled_floor_r16():
    """Compiled floor at R = 16 (the adaptive-run lockstep width): >= 3x
    over the NumPy wavefront kernel (target 5-10x; the floor leaves CI
    headroom and trips only on a real regression)."""
    _assert_compiled_floor(16, 3.0)


@pytest.mark.skipif(not HAVE_NUMBA, reason=_NO_NUMBA_REASON)
def test_compiled_floor_r64():
    """Compiled floor at R = 64: >= 3x over the NumPy wavefront kernel —
    the compiled loop is not memory-bound the way the per-ball kernel is,
    so the win persists at width."""
    _assert_compiled_floor(64, 3.0)


def test_compiled_results_match_per_ball():
    """Correctness companion for the compiled floors, run with or without
    numba (the fallback executes the same kernel source): the benched
    configuration must stay bit-identical to the per-ball kernel."""
    caps, choices, tie_u = _wavefront_inputs(8, seed=BENCH_SEED + 1)
    n = WAVEFRONT_N
    base = np.zeros((8, n), dtype=np.int64)
    run_batch_ensemble(base, caps, choices, tie_u)
    comp = np.zeros((8, n), dtype=np.int64)
    run_batch_compiled(comp, caps, choices, tie_u)
    np.testing.assert_array_equal(base, comp)


# --------------------------------------------------------------------------
# Replication-parallel compiled floor (same fig01-scaled configuration)
# --------------------------------------------------------------------------

#: Replication width for the parallel floor: wide enough that prange rows
#: amortize the fork/join, matching the fleet-scale workloads the parallel
#: tier exists for.
PARALLEL_BENCH_R = 256

#: Compiled-parallel over compiled-serial floor at R = 256 with >= 4 cores
#: (2 of 4 cores' worth of perfect scaling — memory bandwidth and the
#: fork/join eat the rest; the floor trips on a real regression, not on
#: scheduler jitter).
PARALLEL_FLOOR = 2.0

_NO_PARALLEL_REASON = (
    "compiled-parallel floor needs numba (prange) and >= 4 cores: "
    f"HAVE_NUMBA={HAVE_NUMBA}, cpu_count={os.cpu_count()}"
)


@pytest.mark.skipif(not HAVE_NUMBA or (os.cpu_count() or 1) < 4,
                    reason=_NO_PARALLEL_REASON)
def test_compiled_parallel_floor_r256():
    """prange over replications: >= 2x over the serial compiled kernel at
    R = 256 on the fig01-scaled configuration, threads = min(cores, R).
    Results are asserted bit-identical in the same run, so a floor pass
    can never be bought with a kernel that drifted."""
    R = PARALLEL_BENCH_R
    n = WAVEFRONT_N
    threads = min(os.cpu_count() or 1, R)
    caps, choices, tie_u = _wavefront_inputs(R)
    warmup()  # jit-load + thread-pool spin-up, untimed
    # Explicit untimed warmup of BOTH timed paths at the benched shape.
    serial_counts = np.zeros((R, n), dtype=np.int64)
    run_batch_compiled(serial_counts, caps, choices, tie_u, threads=1)
    parallel_counts = np.zeros((R, n), dtype=np.int64)
    run_batch_compiled(parallel_counts, caps, choices, tie_u, threads=threads)
    np.testing.assert_array_equal(serial_counts, parallel_counts)
    serial = _best(
        lambda: run_batch_compiled(
            np.zeros((R, n), dtype=np.int64), caps, choices, tie_u, threads=1
        ),
        5,
    )
    parallel = _best(
        lambda: run_batch_compiled(
            np.zeros((R, n), dtype=np.int64), caps, choices, tie_u,
            threads=threads,
        ),
        5,
    )
    speedup = serial / parallel
    print(f"\ncompiled-parallel fig01-scaled n={n} R={R}: serial "
          f"{serial * 1e3:.2f} ms, {threads}-thread {parallel * 1e3:.2f} ms, "
          f"speedup {speedup:.2f}x")
    record_bench("fig01_large", R, "compiled", "n/a", serial, threads=1)
    record_bench("fig01_large", R, "compiled", "n/a", parallel,
                 threads=threads)
    record_bench("fig01_large", R, "compiled_parallel_over_serial", "n/a",
                 None, ratio=speedup, floor=PARALLEL_FLOOR)
    assert speedup >= PARALLEL_FLOOR, (
        f"compiled-parallel regressed: {speedup:.2f}x < {PARALLEL_FLOOR}x at "
        f"R={R} with {threads} threads on the fig01-scaled configuration "
        f"(serial {serial * 1e3:.2f} ms vs parallel {parallel * 1e3:.2f} ms)"
    )
