"""Scalar loop vs lockstep ensemble on the fig02 configuration.

Not a paper figure — this tracks the tentpole speedup of the lockstep
ensemble engine (:mod:`repro.core.ensemble`) over the scalar repetition
loop, across replication widths ``R``, on the exact fig02 setting
(32 uniform bins, capacities 1–4, m = C, d = 2).  The scalar and ensemble
rows for each ``R`` land side by side in the benchmark JSON, so the ratio
is a first-class perf-regression signal; ``test_lockstep_speedup_at_r64``
additionally pins the acceptance floor of 5x at ``R = 64``.

``REPRO_BENCH_QUICK=1`` trims the ``R`` sweep (see ``conftest.py``).
"""

import time

import pytest
from conftest import BENCH_SEED, ENSEMBLE_BENCH_RS

from repro.experiments import run_experiment


@pytest.mark.parametrize("engine", ["scalar", "ensemble"])
@pytest.mark.parametrize("R", ENSEMBLE_BENCH_RS)
def test_fig02_engine_throughput(benchmark, R, engine):
    """One fig02 run (all four capacity classes) per engine and width."""
    result = benchmark(
        lambda: run_experiment("fig02", engine=engine, seed=BENCH_SEED, repetitions=R)
    )
    assert result.parameters["engine"] == engine
    assert result.parameters["repetitions"] == R


def test_lockstep_speedup_at_r64():
    """Acceptance floor: the ensemble engine is >= 5x the scalar loop at
    R = 64 replications on the fig02 configuration (min-of-rounds timing)."""

    def best(engine, rounds=7):
        elapsed = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            run_experiment("fig02", engine=engine, seed=BENCH_SEED, repetitions=64)
            elapsed = min(elapsed, time.perf_counter() - start)
        return elapsed

    run_experiment("fig02", engine="ensemble", seed=BENCH_SEED, repetitions=64)  # warm up
    scalar = best("scalar")
    ensemble = best("ensemble")
    speedup = scalar / ensemble
    print(f"\nfig02 R=64: scalar {scalar * 1e3:.2f} ms, "
          f"ensemble {ensemble * 1e3:.2f} ms, speedup {speedup:.2f}x")
    assert speedup >= 5.0, (
        f"lockstep ensemble regressed: {speedup:.2f}x < 5x at R=64 "
        f"(scalar {scalar * 1e3:.2f} ms vs ensemble {ensemble * 1e3:.2f} ms)"
    )
