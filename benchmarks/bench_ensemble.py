"""Scalar loop vs lockstep ensemble on migrated experiment configurations.

Not a paper figure — this tracks the tentpole speedup of the lockstep
ensemble engine (:mod:`repro.core.ensemble`) over the scalar repetition
loop, across replication widths ``R``:

* the exact fig02 setting (32 uniform bins, capacities 1–4, m = C, d = 2),
  the PR-1 flagship configuration, acceptance floor **5x** at ``R = 64``;
* the fig18 exponent-sweep setting (100 two-class bins, power-``t``
  selection), representative of the experiments migrated when the engine
  matrix was completed, acceptance floor **3x** at ``R = 64``.

The scalar and ensemble rows for each ``R`` land side by side in the
benchmark JSON, so the ratio is a first-class perf-regression signal.

``REPRO_BENCH_QUICK=1`` trims the ``R`` sweep (see ``conftest.py``).
"""

import time

import pytest
from conftest import BENCH_SEED, ENSEMBLE_BENCH_RS

from repro.experiments import run_experiment

#: fig18 at one capacity/exponent pair — a post-matrix-migration workload
#: (power-probability sampling + two-class array) unlike fig02's uniform
#: capacity classes.
FIG18_KWARGS = dict(capacities=(3,), t_grid=(1.0, 2.0))


@pytest.mark.parametrize("engine", ["scalar", "ensemble"])
@pytest.mark.parametrize("R", ENSEMBLE_BENCH_RS)
def test_fig02_engine_throughput(benchmark, R, engine):
    """One fig02 run (all four capacity classes) per engine and width."""
    result = benchmark(
        lambda: run_experiment("fig02", engine=engine, seed=BENCH_SEED, repetitions=R)
    )
    assert result.parameters["engine"] == engine
    assert result.parameters["repetitions"] == R


@pytest.mark.parametrize("engine", ["scalar", "ensemble"])
@pytest.mark.parametrize("R", ENSEMBLE_BENCH_RS)
def test_fig18_engine_throughput(benchmark, R, engine):
    """One fig18 grid point pair per engine and width."""
    result = benchmark(
        lambda: run_experiment(
            "fig18", engine=engine, seed=BENCH_SEED, repetitions=R, **FIG18_KWARGS
        )
    )
    assert result.parameters["engine"] == engine
    assert result.parameters["repetitions"] == R


def _best_of(experiment_id, engine, rounds, **kwargs):
    elapsed = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_experiment(
            experiment_id, engine=engine, seed=BENCH_SEED, repetitions=64, **kwargs
        )
        elapsed = min(elapsed, time.perf_counter() - start)
    return elapsed


def _assert_speedup_floor(experiment_id, floor, rounds=7, **kwargs):
    run_experiment(  # warm up
        experiment_id, engine="ensemble", seed=BENCH_SEED, repetitions=64, **kwargs
    )
    scalar = _best_of(experiment_id, "scalar", rounds, **kwargs)
    ensemble = _best_of(experiment_id, "ensemble", rounds, **kwargs)
    speedup = scalar / ensemble
    print(f"\n{experiment_id} R=64: scalar {scalar * 1e3:.2f} ms, "
          f"ensemble {ensemble * 1e3:.2f} ms, speedup {speedup:.2f}x")
    assert speedup >= floor, (
        f"lockstep ensemble regressed: {speedup:.2f}x < {floor}x at R=64 on "
        f"{experiment_id} (scalar {scalar * 1e3:.2f} ms vs ensemble "
        f"{ensemble * 1e3:.2f} ms)"
    )


def test_lockstep_speedup_at_r64():
    """Acceptance floor: the ensemble engine is >= 5x the scalar loop at
    R = 64 replications on the fig02 configuration (min-of-rounds timing)."""
    _assert_speedup_floor("fig02", 5.0)


def test_lockstep_speedup_fig18_at_r64():
    """Acceptance floor for the completed engine matrix: >= 3x over the
    scalar loop at R = 64 on the fig18 configuration (measured ~5x)."""
    _assert_speedup_floor("fig18", 3.0, **FIG18_KWARGS)
