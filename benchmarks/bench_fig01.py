"""Figure 1 bench: uniform bins, sorted load profiles per capacity.

Paper series: mean sorted normalised load over n=10,000 bins for capacities
1, 2, 3, 4, 8 (m = C, d = 2).  Expected shape: the c=1 profile peaks near
lnln(n)/ln 2 + O(1) ~ 3; every c >= 2 profile flattens towards 1 with peak
~ 1 + lnln(n)/c.
"""

from conftest import BENCH_SEED, bench_reps

from repro.experiments import run_experiment


def test_fig01_uniform_profiles(benchmark, report_series):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "fig01", seed=BENCH_SEED, repetitions=bench_reps(8), n=10_000
        ),
        rounds=1,
        iterations=1,
    )
    report_series(result)
    # Shape assertions: peak ordering by capacity, averages at 1.
    peaks = {name: ys[0] for name, ys in result.series.items()}
    assert peaks["1-bins"] > peaks["2-bins"] > peaks["8-bins"]
    assert 2.0 < peaks["1-bins"] < 4.5
    assert peaks["8-bins"] < 1.6
