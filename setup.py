from setuptools import find_packages, setup

setup(
    name="repro-balls-into-nonuniform-bins",
    version="1.0.0",
    description=(
        "Reproduction of Berenbrink et al., 'Balls into Non-uniform Bins' "
        "(IPDPS 2010): capacity-aware multiple-choice allocation, analysis "
        "machinery, and every evaluation figure as a registered experiment"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # The compiled kernel backend (repro.core.compiled) jits its loops
        # when numba is importable and falls back to bit-identical plain
        # Python otherwise; nothing outside this extra requires numba.
        "compiled": ["numba"],
        # scipy is used only to cross-pin the pure-numpy Student-t
        # quantiles in the test suite; runtime code never imports it.
        "test": ["pytest", "pytest-benchmark", "scipy"],
    },
)
